"""Unit tests for heterogeneous (speed-weighted) diffusion."""

import numpy as np
import pytest

from repro.core.diffusion import diffusion_round_continuous
from repro.extensions.heterogeneous import (
    HeterogeneousDiffusionBalancer,
    heterogeneous_potential,
    proportional_target,
    weighted_flows,
    weighted_round,
)
from repro.graphs import generators as g
from repro.simulation.initial import point_load


class TestTarget:
    def test_proportional_split(self):
        loads = np.asarray([10.0, 0.0])
        speeds = np.asarray([1.0, 3.0])
        assert proportional_target(loads, speeds).tolist() == [2.5, 7.5]

    def test_uniform_speeds_give_mean(self):
        loads = np.asarray([8.0, 0.0, 4.0])
        target = proportional_target(loads, np.ones(3))
        assert np.allclose(target, 4.0)

    def test_speeds_validated(self):
        with pytest.raises(ValueError, match="positive"):
            proportional_target(np.ones(2), np.asarray([1.0, 0.0]))
        with pytest.raises(ValueError, match="shape"):
            proportional_target(np.ones(2), np.ones(3))


class TestPotential:
    def test_zero_at_target(self):
        loads = np.asarray([10.0, 0.0])
        speeds = np.asarray([1.0, 3.0])
        target = proportional_target(loads, speeds)
        assert heterogeneous_potential(target, speeds) == pytest.approx(0.0)

    def test_reduces_to_standard_phi_for_unit_speeds(self, rng):
        from repro.core.potential import potential

        v = rng.uniform(0, 100, 17)
        assert heterogeneous_potential(v, np.ones(17)) == pytest.approx(potential(v), rel=1e-12)

    def test_positive_off_target(self):
        assert heterogeneous_potential(np.asarray([10.0, 0.0]), np.asarray([1.0, 1.0])) > 0


class TestRound:
    def test_unit_speeds_reduce_to_algorithm1(self, any_topology, rng):
        loads = rng.uniform(0, 100, any_topology.n)
        ones = np.ones(any_topology.n)
        assert np.allclose(
            weighted_round(loads, ones, any_topology),
            diffusion_round_continuous(loads, any_topology),
            atol=1e-12,
        )

    def test_conservation(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        speeds = rng.uniform(0.5, 8.0, torus.n)
        out = weighted_round(loads, speeds, torus)
        assert out.sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_discrete_conserves_exactly(self, torus, rng):
        loads = rng.integers(0, 10_000, torus.n).astype(np.int64)
        speeds = rng.uniform(0.5, 8.0, torus.n)
        out = weighted_round(loads, speeds, torus, discrete=True)
        assert out.sum() == loads.sum()
        assert out.dtype == np.int64

    def test_weighted_potential_never_increases(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        speeds = rng.uniform(0.5, 8.0, torus.n)
        for _ in range(20):
            new = weighted_round(loads, speeds, torus)
            assert heterogeneous_potential(new, speeds) <= heterogeneous_potential(loads, speeds) + 1e-9
            loads = new

    def test_target_is_fixed_point(self, torus, rng):
        speeds = rng.uniform(0.5, 8.0, torus.n)
        loads = proportional_target(np.full(torus.n, 10.0), speeds)
        out = weighted_round(loads, speeds, torus)
        assert np.allclose(out, loads, atol=1e-9)

    def test_flows_antisymmetric_in_normalized_loads(self):
        t = g.path(2)
        speeds = np.asarray([2.0, 1.0])
        f_ab = weighted_flows(np.asarray([8.0, 1.0]), speeds, t)
        # w = [4, 1]; flow = min(2,1)*(4-1)/4 = 0.75
        assert f_ab[0] == pytest.approx(0.75)

    def test_converges_to_proportional_state(self):
        topo = g.torus_2d(4, 4)
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1.0, 5.0, topo.n)
        x = point_load(topo.n, total=1600, discrete=False)
        target = proportional_target(x, speeds)
        for _ in range(2000):
            x = weighted_round(x, speeds, topo)
        assert np.allclose(x, target, rtol=1e-4, atol=1e-6)


class TestBalancer:
    def test_step_matches_kernel(self, torus, rng):
        speeds = rng.uniform(1.0, 4.0, torus.n)
        bal = HeterogeneousDiffusionBalancer(torus, speeds)
        loads = rng.uniform(0, 100, torus.n)
        assert np.allclose(
            bal.step(loads, np.random.default_rng(0)),
            weighted_round(loads, speeds, torus),
        )

    def test_mode_validated(self, torus):
        with pytest.raises(ValueError):
            HeterogeneousDiffusionBalancer(torus, np.ones(torus.n), mode="best-effort")

    def test_size_mismatch(self, torus):
        bal = HeterogeneousDiffusionBalancer(torus, np.ones(torus.n))
        with pytest.raises(ValueError):
            bal.step(np.ones(torus.n + 1), np.random.default_rng(0))

    def test_registered(self, torus):
        from repro.core.protocols import get_balancer

        bal = get_balancer("hetero-diffusion", torus)
        assert "hetero" in bal.name
