"""Unit tests for asynchronous neighbourhood balancing."""

import numpy as np
import pytest

from repro.core.potential import potential
from repro.extensions.asynchronous import AsyncDiffusionBalancer, async_tick
from repro.graphs import generators as g
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load


class TestTick:
    def test_node_pushes_to_poorer_neighbours(self):
        t = g.star(4)  # hub 0 with 3 leaves
        loads = np.asarray([12.0, 0.0, 0.0, 0.0])
        out = async_tick(loads, t, node=0)
        # hub degree 3, leaf degree 1: rate = 12/(4*3) = 1 per leaf
        assert out.tolist() == [9.0, 1.0, 1.0, 1.0]

    def test_poor_node_does_nothing(self):
        t = g.star(4)
        loads = np.asarray([0.0, 5.0, 5.0, 5.0])
        out = async_tick(loads, t, node=0)
        assert np.array_equal(out, loads)

    def test_discrete_floors(self):
        t = g.path(2)
        out = async_tick(np.asarray([9, 2], dtype=np.int64), t, node=0, discrete=True)
        assert out.tolist() == [8, 3]  # floor(7/4) = 1

    def test_conservation(self, torus, rng):
        loads = rng.integers(0, 1000, torus.n).astype(np.int64)
        for node in range(torus.n):
            out = async_tick(loads, torus, node, discrete=True)
            assert out.sum() == loads.sum()

    def test_potential_never_increases(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        for _ in range(50):
            node = int(rng.integers(0, torus.n))
            new = async_tick(loads, torus, node)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new

    def test_isolated_node_noop(self):
        from repro.graphs.topology import Topology

        t = Topology(3, [(0, 1)])
        loads = np.asarray([1.0, 2.0, 9.0])
        assert np.array_equal(async_tick(loads, t, node=2), loads)

    def test_node_range_checked(self, torus):
        with pytest.raises(IndexError):
            async_tick(np.ones(torus.n), torus, torus.n)

    def test_input_not_mutated(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        snap = loads.copy()
        async_tick(loads, torus, 0)
        assert np.array_equal(loads, snap)


class TestBalancer:
    def test_validation(self, torus):
        with pytest.raises(ValueError):
            AsyncDiffusionBalancer(torus, mode="eventual")
        with pytest.raises(ValueError):
            AsyncDiffusionBalancer(torus, schedule="priority")
        with pytest.raises(ValueError):
            AsyncDiffusionBalancer(torus, ticks_per_step=0)

    def test_default_ticks_is_n(self, torus):
        assert AsyncDiffusionBalancer(torus).ticks_per_step == torus.n

    def test_round_robin_covers_all_nodes(self, cycle8):
        bal = AsyncDiffusionBalancer(cycle8, schedule="round-robin", ticks_per_step=1)
        rng = np.random.default_rng(0)
        picked = [bal._pick(rng) for _ in range(cycle8.n)]
        assert sorted(picked) == list(range(cycle8.n))

    def test_round_robin_reset(self, cycle8):
        bal = AsyncDiffusionBalancer(cycle8, schedule="round-robin", ticks_per_step=1)
        rng = np.random.default_rng(0)
        bal._pick(rng)
        bal.reset()
        assert bal._pick(rng) == 0

    def test_converges_continuous(self, torus):
        bal = AsyncDiffusionBalancer(torus)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=500, seed=1)
        assert trace.last_potential < 1e-6 * trace.initial_potential

    def test_converges_discrete_with_conservation(self, torus):
        bal = AsyncDiffusionBalancer(torus, mode="discrete")
        trace = run_balancer(bal, point_load(torus.n, total=64_000), rounds=300, seed=1)
        assert trace.last_potential < 1e-3 * trace.initial_potential
        assert trace.conservation_error() == 0.0

    def test_work_comparable_to_sync(self):
        """n async ticks make progress within a constant of one sync round."""
        from repro.core.diffusion import DiffusionBalancer

        topo = g.torus_2d(4, 4)
        loads = point_load(topo.n, discrete=False)
        eps = 1e-4
        sync = run_balancer(DiffusionBalancer(topo), loads, rounds=2_000)
        t_sync = sync.rounds_to_fraction(eps)
        async_tr = run_balancer(AsyncDiffusionBalancer(topo), loads, rounds=2_000, seed=0)
        t_async = async_tr.rounds_to_fraction(eps)
        assert t_async is not None and t_sync is not None
        assert t_async <= 4 * t_sync

    def test_registered(self, torus):
        from repro.core.protocols import get_balancer

        assert "async" in get_balancer("async-diffusion", torus).name
        assert get_balancer("async-diffusion-discrete", torus).mode == "discrete"
