"""Unit tests for the second-order scheme (SOS)."""

import numpy as np
import pytest

from repro.baselines.first_order import FirstOrderBalancer
from repro.baselines.second_order import SecondOrderBalancer, optimal_beta
from repro.core.potential import potential
from repro.graphs import generators as g
from repro.graphs.spectral import gamma as spectral_gamma
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load


class TestOptimalBeta:
    def test_gamma_zero_gives_one(self):
        assert optimal_beta(0.0) == pytest.approx(1.0)

    def test_monotone_in_gamma(self):
        assert optimal_beta(0.9) > optimal_beta(0.5) > optimal_beta(0.1)

    def test_approaches_two(self):
        assert 1.9 < optimal_beta(0.999) < 2.0

    def test_domain_checked(self):
        with pytest.raises(ValueError):
            optimal_beta(1.0)
        with pytest.raises(ValueError):
            optimal_beta(-0.1)


class TestScheme:
    def test_beta_one_equals_fos(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        sos = SecondOrderBalancer(torus, beta=1.0)
        fos = FirstOrderBalancer(torus)
        r = np.random.default_rng(0)
        a, b = loads.copy(), loads.copy()
        for _ in range(5):
            a = sos.step(a, r)
            b = fos.step(b, r)
            assert np.allclose(a, b, atol=1e-9)

    def test_first_round_is_fos(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        sos = SecondOrderBalancer(torus)
        fos = FirstOrderBalancer(torus)
        assert np.allclose(
            sos.step(loads, np.random.default_rng(0)),
            fos.step(loads, np.random.default_rng(0)),
        )

    def test_conservation(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        bal = SecondOrderBalancer(torus)
        r = np.random.default_rng(0)
        x = loads
        for _ in range(10):
            x = bal.step(x, r)
            assert x.sum() == pytest.approx(loads.sum(), rel=1e-9)

    def test_beta_default_from_gamma(self, torus):
        bal = SecondOrderBalancer(torus)
        assert bal.beta == pytest.approx(optimal_beta(spectral_gamma(torus)))

    def test_beta_range_checked(self, torus):
        with pytest.raises(ValueError):
            SecondOrderBalancer(torus, beta=2.0)

    def test_allows_transient_negative_loads(self, torus):
        bal = SecondOrderBalancer(torus)
        # Overshoot can dip below zero; validate_loads must accept it.
        out = bal.validate_loads(np.asarray([-0.5, 1.0, 2.0]))
        assert out.dtype == np.float64

    def test_reset_clears_history(self, torus, rng):
        bal = SecondOrderBalancer(torus)
        bal.step(rng.uniform(0, 10, torus.n), np.random.default_rng(0))
        assert "prev" in bal.state.history
        bal.reset()
        assert bal.state.history == {}


class TestConvergenceClaim:
    def test_sos_beats_fos_on_cycle(self):
        """[MGS98]: SOS converges much faster on poorly connected graphs."""
        topo = g.cycle(24)
        loads = point_load(topo.n, total=2400, discrete=False)
        eps = 1e-8
        fos_trace = run_balancer(FirstOrderBalancer(topo), loads, rounds=20_000)
        sos_trace = run_balancer(SecondOrderBalancer(topo), loads, rounds=20_000)
        t_fos = fos_trace.rounds_to_fraction(eps)
        t_sos = sos_trace.rounds_to_fraction(eps)
        assert t_sos is not None and t_fos is not None
        assert t_sos * 2 < t_fos  # at least 2x faster; typically much more

    def test_sos_converges_to_balance(self, torus):
        loads = point_load(torus.n, total=6400, discrete=False)
        trace = run_balancer(SecondOrderBalancer(torus), loads, rounds=500)
        assert trace.last_potential < 1e-6 * trace.initial_potential
