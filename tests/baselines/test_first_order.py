"""Unit tests for the first-order scheme (FOS) and its discretizations."""

import numpy as np
import pytest

from repro.baselines.first_order import (
    FirstOrderBalancer,
    fos_alpha,
    fos_flows,
    fos_round_continuous,
    fos_round_discrete_floor,
    fos_round_discrete_randomized,
)
from repro.core.potential import l2_error, potential
from repro.graphs import generators as g
from repro.graphs.spectral import diffusion_matrix, gamma
from repro.graphs.topology import Topology


class TestContinuous:
    def test_round_equals_matrix_product(self, any_topology, rng):
        loads = rng.uniform(0, 100, any_topology.n)
        m = diffusion_matrix(any_topology)
        assert np.allclose(fos_round_continuous(loads, any_topology), m @ loads, atol=1e-9)

    def test_alpha_default(self, torus):
        assert fos_alpha(torus) == pytest.approx(1 / (torus.max_degree + 1))

    def test_conservation(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        assert fos_round_continuous(loads, torus).sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_error_contracts_by_gamma(self, any_topology, rng):
        """Cybenko: ||e(t+1)|| <= gamma ||e(t)||."""
        gam = gamma(any_topology)
        loads = rng.uniform(0, 100, any_topology.n)
        out = fos_round_continuous(loads, any_topology)
        assert l2_error(out) <= gam * l2_error(loads) + 1e-9

    def test_converges_on_bipartite_cycle(self, rng):
        # Even cycles are bipartite; alpha = 1/(delta+1) still converges.
        topo = g.cycle(6)
        loads = rng.uniform(0, 100, 6)
        for _ in range(500):
            loads = fos_round_continuous(loads, topo)
        assert np.allclose(loads, loads.mean(), atol=1e-6)


class TestDiscreteFloor:
    def test_conserves_exactly(self, torus, rng):
        loads = rng.integers(0, 10_000, torus.n).astype(np.int64)
        out = fos_round_discrete_floor(loads, torus)
        assert out.sum() == loads.sum()
        assert out.dtype == np.int64

    def test_two_node_example(self):
        t = Topology(2, [(0, 1)])
        # alpha = 1/2; flow = floor(8/2) = 4 -> perfectly balanced.
        out = fos_round_discrete_floor(np.asarray([9, 1], dtype=np.int64), t)
        assert out.tolist() == [5, 5]

    def test_small_differences_stall(self):
        t = g.path(4)
        loads = np.asarray([2, 1, 1, 0], dtype=np.int64)
        # alpha = 1/3: all flows floor to zero.
        out = fos_round_discrete_floor(loads, t)
        assert np.array_equal(out, loads)


class TestDiscreteRandomized:
    def test_conserves_exactly(self, torus, rng):
        loads = rng.integers(0, 10_000, torus.n).astype(np.int64)
        out = fos_round_discrete_randomized(loads, torus, rng)
        assert out.sum() == loads.sum()

    def test_unbiased_expectation(self):
        """E[randomized tokens] equals the continuous flow (EM03's point)."""
        t = Topology(2, [(0, 1)])
        loads = np.asarray([2, 0], dtype=np.int64)  # continuous flow = 1.0
        rng = np.random.default_rng(0)
        outs = np.asarray([fos_round_discrete_randomized(loads, t, rng)[1] for _ in range(3000)])
        # flow exactly 1.0 -> always ships 1: no variance in this case
        assert outs.mean() == pytest.approx(1.0)

    def test_fractional_flow_randomizes(self):
        t = Topology(2, [(0, 1)])
        loads = np.asarray([3, 0], dtype=np.int64)  # continuous flow = 1.5
        rng = np.random.default_rng(0)
        received = np.asarray([fos_round_discrete_randomized(loads, t, rng)[1] for _ in range(4000)])
        assert set(np.unique(received)) == {1, 2}
        assert received.mean() == pytest.approx(1.5, abs=0.05)

    def test_escapes_floor_stall(self):
        """Randomized rounding keeps making progress where floor stalls."""
        t = g.path(4)
        loads = np.asarray([2, 1, 1, 0], dtype=np.int64)
        rng = np.random.default_rng(3)
        for _ in range(200):
            loads = fos_round_discrete_randomized(loads, t, rng)
        assert potential(loads) <= potential(np.asarray([2, 1, 1, 0]))


class TestBalancer:
    def test_variant_validation(self, torus):
        with pytest.raises(ValueError):
            FirstOrderBalancer(torus, variant="stochastic")

    def test_alpha_stability_guard(self, torus):
        with pytest.raises(ValueError, match="stable range"):
            FirstOrderBalancer(torus, alpha=1.0)

    def test_modes(self, torus):
        assert FirstOrderBalancer(torus).mode == "continuous"
        assert FirstOrderBalancer(torus, variant="floor").mode == "discrete"
        assert FirstOrderBalancer(torus, variant="randomized").mode == "discrete"

    def test_step_dispatch(self, torus, rng):
        loads = rng.integers(0, 500, torus.n).astype(np.int64)
        floor_bal = FirstOrderBalancer(torus, variant="floor")
        assert np.array_equal(
            floor_bal.step(loads, np.random.default_rng(0)),
            fos_round_discrete_floor(loads, torus),
        )
