"""Unit tests for the Optimal Polynomial Scheme."""

import numpy as np
import pytest

from repro.baselines.ops import OptimalPolynomialBalancer, leja_order
from repro.core.potential import potential
from repro.graphs import generators as g
from repro.graphs.spectral import distinct_laplacian_eigenvalues
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load


class TestLejaOrder:
    def test_preserves_multiset(self, rng):
        vals = rng.uniform(0.1, 10, 12)
        ordered = leja_order(vals)
        assert sorted(ordered.tolist()) == pytest.approx(sorted(vals.tolist()))

    def test_starts_with_largest_magnitude(self):
        ordered = leja_order(np.asarray([1.0, 5.0, 3.0]))
        assert ordered[0] == 5.0

    def test_empty_input(self):
        assert leja_order(np.asarray([])).size == 0

    def test_singleton(self):
        assert leja_order(np.asarray([2.0])).tolist() == [2.0]


class TestScheme:
    def test_exact_after_m_minus_1_rounds_hypercube(self):
        """[DFM99]: balanced exactly once every distinct eigenvalue used."""
        topo = g.hypercube(4)  # eigenvalues 0,2,4,6,8 -> 4 rounds
        bal = OptimalPolynomialBalancer(topo)
        assert bal.rounds_to_exact == 4
        loads = point_load(topo.n, total=1600, discrete=False)
        trace = run_balancer(bal, loads, rounds=bal.rounds_to_exact)
        assert trace.last_potential < 1e-12 * trace.initial_potential

    def test_exact_on_complete_in_one_round(self):
        topo = g.complete(9)  # eigenvalues {0, 9} -> 1 round
        bal = OptimalPolynomialBalancer(topo)
        assert bal.rounds_to_exact == 1
        loads = point_load(9, total=900, discrete=False)
        trace = run_balancer(bal, loads, rounds=1)
        assert trace.last_potential < 1e-18 * trace.initial_potential + 1e-9

    def test_exact_on_cycle(self):
        topo = g.cycle(16)
        bal = OptimalPolynomialBalancer(topo)
        m = distinct_laplacian_eigenvalues(topo).shape[0]
        assert bal.rounds_to_exact == m - 1
        loads = point_load(16, total=1600, discrete=False)
        trace = run_balancer(bal, loads, rounds=bal.rounds_to_exact)
        assert trace.last_potential < 1e-8 * trace.initial_potential

    def test_idles_after_schedule(self, torus, rng):
        bal = OptimalPolynomialBalancer(torus)
        loads = rng.uniform(0, 10, torus.n)
        r = np.random.default_rng(0)
        x = loads
        for _ in range(bal.rounds_to_exact + 3):
            x = bal.step(x, r)
        # Extra steps must be identity (already exact).
        y = bal.step(x, r)
        assert np.array_equal(x, y)

    def test_conservation(self, torus, rng):
        bal = OptimalPolynomialBalancer(torus)
        loads = rng.uniform(0, 100, torus.n)
        r = np.random.default_rng(0)
        x = loads
        for _ in range(bal.rounds_to_exact):
            x = bal.step(x, r)
            assert x.sum() == pytest.approx(loads.sum(), rel=1e-9)

    def test_leja_beats_ascending_on_path(self):
        """The numerics ablation: ascending order amplifies error on graphs
        with tiny lambda_2; Leja ordering keeps OPS exact."""
        topo = g.path(24)
        loads = point_load(24, total=2400, discrete=False)
        leja = OptimalPolynomialBalancer(topo, use_leja=True)
        asc = OptimalPolynomialBalancer(topo, use_leja=False)
        t_leja = run_balancer(leja, loads, rounds=leja.rounds_to_exact)
        t_asc = run_balancer(asc, loads, rounds=asc.rounds_to_exact, )
        assert t_leja.last_potential <= t_asc.last_potential

    def test_edgeless_graph_rejected(self):
        from repro.graphs.topology import Topology

        with pytest.raises(ValueError):
            OptimalPolynomialBalancer(Topology(3, []))

    def test_accepts_transient_negative(self, torus):
        bal = OptimalPolynomialBalancer(torus)
        out = bal.validate_loads(np.asarray([-1.0, 2.0]))
        assert out.dtype == np.float64
