"""Unit tests for dimension-exchange balancing."""

import numpy as np
import pytest

from repro.baselines.dimension_exchange import (
    DimensionExchangeBalancer,
    exchange_along_matching,
)
from repro.core.potential import potential
from repro.graphs import generators as g
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load


class TestExchange:
    def test_continuous_pairs_equalize(self):
        t = g.path(4)
        loads = np.asarray([10.0, 0.0, 6.0, 2.0])
        out = exchange_along_matching(loads, t, np.asarray([0, 2]))  # edges (0,1),(2,3)
        assert out.tolist() == [5.0, 5.0, 4.0, 4.0]

    def test_discrete_richer_sends_floor_half(self):
        t = g.path(2)
        out = exchange_along_matching(np.asarray([9, 2], dtype=np.int64), t, np.asarray([0]), discrete=True)
        assert out.tolist() == [6, 5]  # floor(7/2) = 3 moves

    def test_discrete_direction_respected(self):
        t = g.path(2)
        out = exchange_along_matching(np.asarray([2, 9], dtype=np.int64), t, np.asarray([0]), discrete=True)
        assert out.tolist() == [5, 6]

    def test_empty_matching_is_noop(self, torus, rng):
        loads = rng.uniform(0, 10, torus.n)
        out = exchange_along_matching(loads, torus, np.empty(0, dtype=np.int64))
        assert np.array_equal(out, loads)

    def test_non_matching_rejected(self):
        t = g.path(3)  # edges (0,1),(1,2) share node 1
        with pytest.raises(ValueError, match="matching"):
            exchange_along_matching(np.zeros(3), t, np.asarray([0, 1]))

    def test_conservation_continuous(self, torus, rng):
        from repro.graphs.matchings import luby_matching

        loads = rng.uniform(0, 100, torus.n)
        m = luby_matching(torus, rng)
        out = exchange_along_matching(loads, torus, m)
        assert out.sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_conservation_discrete(self, torus, rng):
        from repro.graphs.matchings import luby_matching

        loads = rng.integers(0, 1000, torus.n).astype(np.int64)
        m = luby_matching(torus, rng)
        out = exchange_along_matching(loads, torus, m, discrete=True)
        assert out.sum() == loads.sum()

    def test_potential_never_increases(self, torus, rng):
        from repro.graphs.matchings import luby_matching

        loads = rng.uniform(0, 100, torus.n)
        for _ in range(10):
            m = luby_matching(torus, rng)
            new = exchange_along_matching(loads, torus, m)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new


class TestBalancer:
    def test_partner_rule_validation(self, torus):
        with pytest.raises(ValueError):
            DimensionExchangeBalancer(torus, partner_rule="bluetooth")

    def test_mode_validation(self, torus):
        with pytest.raises(ValueError):
            DimensionExchangeBalancer(torus, mode="fuzzy")

    def test_round_robin_cycles_colors(self, cycle8):
        bal = DimensionExchangeBalancer(cycle8, partner_rule="round-robin")
        rng = np.random.default_rng(0)
        schedule = [bal.matching_for_round(r, rng) for r in range(6)]
        n_classes = len(bal._schedule)
        assert np.array_equal(schedule[0], schedule[n_classes])

    def test_round_robin_deterministic(self, torus):
        a = DimensionExchangeBalancer(torus, partner_rule="round-robin")
        b = DimensionExchangeBalancer(torus, partner_rule="round-robin")
        loads = point_load(torus.n, total=6400, discrete=False)
        ta = run_balancer(a, loads, rounds=20, seed=1)
        tb = run_balancer(b, loads, rounds=20, seed=99)  # seed must not matter
        assert ta.potentials == tb.potentials

    def test_two_stage_converges(self, torus):
        bal = DimensionExchangeBalancer(torus, partner_rule="two-stage")
        loads = point_load(torus.n, total=6400, discrete=False)
        trace = run_balancer(bal, loads, rounds=600, seed=2)
        assert trace.last_potential < 1e-4 * trace.initial_potential

    def test_luby_converges_discrete(self, torus):
        bal = DimensionExchangeBalancer(torus, mode="discrete")
        loads = point_load(torus.n, total=64_000, discrete=True)
        trace = run_balancer(bal, loads, rounds=500, seed=2)
        assert trace.last_potential < 1e-3 * trace.initial_potential
        assert trace.conservation_error() == 0.0

    def test_gm94_expected_drop(self, torus):
        """[GM94]: expected relative drop at least lambda2/(16 delta)."""
        from repro.graphs.spectral import lambda_2

        guaranteed = lambda_2(torus) / (16 * torus.max_degree)
        bal = DimensionExchangeBalancer(torus, partner_rule="two-stage")
        rng = np.random.default_rng(4)
        loads = point_load(torus.n, total=6400, discrete=False).astype(float)
        drops = []
        for _ in range(300):
            new = bal.step(loads, rng)
            drops.append((potential(loads) - potential(new)) / potential(loads))
        assert np.mean(drops) >= guaranteed
