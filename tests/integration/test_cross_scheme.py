"""Cross-scheme equivalences: independent implementations must coincide.

Several schemes coincide mathematically in special regimes.  Checking
those identities across *independently written* code paths is the
strongest internal consistency audit the library has:

- on a d-regular graph, Algorithm 1's rate ``1/(4 max(d_i,d_j))`` equals
  FOS with ``alpha = 1/(4d)`` — two different kernels, same map;
- SOS with ``beta = 1`` degenerates to FOS (already unit-tested) and OPS
  on K_n equals one FOS round with ``alpha = 1/n``;
- the heterogeneous scheme with unit speeds equals Algorithm 1;
- the sequential decomposition's endpoint equals the concurrent round;
- the superstep substrate equals the vectorized kernel.

The last three live in their own test files; this file covers the
scheme-vs-scheme identities.
"""

import numpy as np
import pytest

from repro.baselines.first_order import FirstOrderBalancer, fos_round_continuous
from repro.baselines.ops import OptimalPolynomialBalancer
from repro.core.diffusion import DiffusionBalancer, diffusion_round_continuous
from repro.graphs import generators as g


class TestAlgorithm1VsFOS:
    @pytest.mark.parametrize("build", [
        lambda: g.cycle(16),
        lambda: g.torus_2d(4, 4),
        lambda: g.hypercube(4),
        lambda: g.petersen(),
        lambda: g.complete(9),
    ], ids=["cycle", "torus", "hypercube", "petersen", "complete"])
    def test_identical_on_regular_graphs(self, build, rng):
        """On d-regular graphs Algorithm 1 == FOS(alpha=1/(4d))."""
        topo = build()
        d = topo.max_degree
        assert set(topo.degrees.tolist()) == {d}, "fixture must be regular"
        loads = rng.uniform(0, 1000, topo.n)
        x_alg1, x_fos = loads.copy(), loads.copy()
        for _ in range(10):
            x_alg1 = diffusion_round_continuous(x_alg1, topo)
            x_fos = fos_round_continuous(x_fos, topo, alpha=1.0 / (4 * d))
            assert np.allclose(x_alg1, x_fos, atol=1e-9)

    def test_differ_on_irregular_graphs(self, rng):
        """On irregular graphs the per-edge max-degree damping differs
        from any single global alpha."""
        topo = g.star(8)
        loads = rng.uniform(0, 1000, topo.n)
        x_alg1 = diffusion_round_continuous(loads, topo)
        for alpha in (1.0 / (4 * topo.max_degree), 1.0 / (topo.max_degree + 1)):
            x_fos = fos_round_continuous(loads, topo, alpha=alpha)
            # star IS regular-ish in max(d_i,d_j): every edge touches the hub,
            # so max is always delta -> actually equal for alpha=1/(4 delta).
            if alpha == 1.0 / (4 * topo.max_degree):
                assert np.allclose(x_alg1, x_fos, atol=1e-9)
            else:
                assert not np.allclose(x_alg1, x_fos, atol=1e-9)

    def test_balancer_wrappers_agree_with_kernels(self, rng):
        topo = g.torus_2d(4, 4)
        loads = rng.uniform(0, 100, topo.n)
        a = DiffusionBalancer(topo).step(loads, np.random.default_rng(0))
        b = FirstOrderBalancer(topo, alpha=1.0 / (4 * topo.max_degree)).step(
            loads, np.random.default_rng(0)
        )
        assert np.allclose(a, b, atol=1e-12)


class TestOPSDegenerate:
    def test_ops_on_complete_is_one_fos_round_alpha_1_over_n(self, rng):
        """K_n has one nonzero eigenvalue (n): OPS's single round is
        ``x - Lx/n`` == FOS with alpha = 1/n == instant balance."""
        n = 8
        topo = g.complete(n)
        loads = rng.uniform(0, 100, n)
        ops = OptimalPolynomialBalancer(topo)
        out_ops = ops.step(loads, np.random.default_rng(0))
        out_fos = fos_round_continuous(loads, topo, alpha=1.0 / n)
        assert np.allclose(out_ops, out_fos, atol=1e-9)
        assert np.allclose(out_ops, loads.mean(), atol=1e-9)


class TestWorkNormalizedComparisons:
    def test_all_continuous_schemes_reach_same_fixed_point(self, rng):
        """Every continuous scheme must settle on the same balanced state."""
        topo = g.torus_2d(4, 4)
        loads = rng.uniform(0, 100, topo.n)
        target = loads.mean()
        from repro.core.protocols import get_balancer

        for name in ("diffusion", "fos", "sos", "ops", "matching-de", "round-robin-de", "async-diffusion"):
            bal = get_balancer(name, topo)
            x = loads.copy()
            r = np.random.default_rng(1)
            for _ in range(600):
                x = bal.step(x, r)
            assert np.allclose(x, target, atol=1e-3), name
