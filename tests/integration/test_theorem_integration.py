"""Integration tests: the theorems checked end-to-end through the engine.

Unlike the experiment-table tests (which assert on report columns), these
drive the public API the way a user would and assert the raw guarantees.
"""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    theorem4_rounds,
    theorem6_rounds,
    theorem6_threshold,
    theorem12_rounds,
    theorem14_threshold,
)
from repro.core.diffusion import DiffusionBalancer
from repro.core.random_partner import RandomPartnerBalancer
from repro.graphs import generators as g
from repro.graphs.dynamic import AdversarialDynamics, StaticDynamics
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.engine import Simulator, run_balancer
from repro.simulation.initial import bimodal_load, point_load
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow


class TestTheorem4EndToEnd:
    @pytest.mark.parametrize("spec", ["cycle:16", "torus:4x4", "hypercube:4", "complete:8"])
    def test_continuous_within_bound(self, spec):
        topo = g.by_name(spec)
        eps = 1e-5
        bound = theorem4_rounds(topo.max_degree, lambda_2(topo), eps).value
        bal = DiffusionBalancer(topo, mode="continuous")
        loads = point_load(topo.n, discrete=False)
        sim = Simulator(bal, stopping=[PotentialFractionBelow(eps), MaxRounds(int(bound * 2) + 50)])
        trace = sim.run(loads, 0)
        t = trace.rounds_to_fraction(eps)
        assert t is not None and t <= math.ceil(bound)

    def test_bimodal_initial_state(self):
        topo = g.torus_2d(4, 4)
        eps = 1e-5
        bound = theorem4_rounds(topo.max_degree, lambda_2(topo), eps).value
        trace = run_balancer(
            DiffusionBalancer(topo), bimodal_load(topo.n, discrete=False), rounds=int(bound) + 1
        )
        assert trace.rounds_to_fraction(eps) is not None


class TestTheorem6EndToEnd:
    @pytest.mark.parametrize("spec", ["cycle:16", "torus:4x4", "hypercube:4"])
    def test_discrete_reaches_threshold_within_bound(self, spec):
        topo = g.by_name(spec)
        lam2 = lambda_2(topo)
        phi_star = theorem6_threshold(topo.n, topo.max_degree, lam2).value
        total = int(math.sqrt(1000 * phi_star)) + topo.n
        loads = point_load(topo.n, total=total, discrete=True)
        bal = DiffusionBalancer(topo, mode="discrete")
        trace = run_balancer(bal, loads, rounds=100_000)
        phi0 = trace.initial_potential
        bound = theorem6_rounds(topo.n, topo.max_degree, lam2, phi0).value
        t = trace.rounds_to_potential(phi_star)
        assert t is not None and t <= math.ceil(bound)

    def test_discrete_below_threshold_is_vacuous(self):
        """Starting below Phi*, the bound is 0 rounds and trivially true."""
        topo = g.torus_2d(4, 4)
        lam2 = lambda_2(topo)
        phi_star = theorem6_threshold(topo.n, topo.max_degree, lam2).value
        loads = point_load(topo.n, total=topo.n, discrete=True)  # tiny potential
        trace = run_balancer(DiffusionBalancer(topo, mode="discrete"), loads, rounds=1)
        assert trace.initial_potential <= phi_star


class TestTheorem7EndToEnd:
    def test_static_dynamic_network_equals_fixed(self):
        """Theorem 7 with a constant sequence must reproduce Theorem 4."""
        topo = g.torus_2d(4, 4)
        loads = point_load(topo.n, discrete=False)
        fixed = run_balancer(DiffusionBalancer(topo), loads, rounds=30)
        dyn = run_balancer(DiffusionBalancer(StaticDynamics(topo)), loads, rounds=30)
        assert fixed.potentials == pytest.approx(dyn.potentials)

    def test_disconnected_prefix_makes_no_progress_then_converges(self):
        topo = g.torus_2d(4, 4)
        empty = Topology(topo.n, [])
        dyn = AdversarialDynamics([empty] * 5, topo)
        loads = point_load(topo.n, discrete=False)
        trace = run_balancer(DiffusionBalancer(dyn), loads, rounds=200)
        pots = trace.potentials
        assert pots[0] == pytest.approx(pots[5])  # frozen while disconnected
        assert pots[-1] < 1e-3 * pots[0]  # converges afterwards


class TestTheorem12EndToEnd:
    def test_random_partner_hits_target_within_bound(self):
        n, c = 128, 1.0
        loads = point_load(n, discrete=False)
        bal = RandomPartnerBalancer(mode="continuous")
        trace = run_balancer(bal, loads, rounds=3_000, seed=1)
        phi0 = trace.initial_potential
        t_bound = theorem12_rounds(phi0, c).value
        target = math.exp(-c)
        t = trace.rounds_to_potential(target)
        assert t is not None and t <= t_bound

    def test_multiple_seeds_all_converge(self):
        n = 64
        loads = point_load(n, discrete=False)
        for seed in range(5):
            trace = run_balancer(RandomPartnerBalancer(), loads, rounds=500, seed=seed)
            assert trace.last_potential < 1e-6 * trace.initial_potential


class TestTheorem14EndToEnd:
    def test_discrete_random_partner_reaches_threshold(self):
        n = 128
        thr = theorem14_threshold(n).value
        loads = point_load(n, total=int(math.sqrt(3000 * thr)) + n, discrete=True)
        trace = run_balancer(RandomPartnerBalancer(mode="discrete"), loads, rounds=2_000, seed=3)
        t = trace.rounds_to_potential(thr)
        assert t is not None
        assert trace.conservation_error() == 0.0


class TestCrossEngineFidelity:
    """The vectorized engine vs the message-passing substrate, end to end."""

    @pytest.mark.parametrize("spec", ["cycle:12", "torus:4x4", "hypercube:4", "star:9"])
    def test_discrete_bitwise_equal_over_long_run(self, spec):
        from repro.simulation.superstep import run_superstep_diffusion

        topo = g.by_name(spec)
        loads = point_load(topo.n, total=137 * topo.n + 1, discrete=True)
        hist = run_superstep_diffusion(topo, loads, 40, discrete=True)
        trace = run_balancer(
            DiffusionBalancer(topo, mode="discrete"), loads, rounds=40, keep_snapshots=True
        )
        for r in range(41):
            assert np.array_equal(hist[r], trace.snapshots[r]), f"round {r} diverged"
