"""Invariants of node-axis partitions: covers, ghosts, halo-plan symmetry."""

import numpy as np
import pytest

from repro.graphs.generators import hypercube, random_regular, torus_2d
from repro.graphs.partition import (
    PARTITION_STRATEGIES,
    Partition,
    bfs_assignment,
    contiguous_assignment,
    make_partition,
    parse_partitions,
)

TOPOLOGIES = [
    torus_2d(8, 8),
    hypercube(6),
    random_regular(60, 4, np.random.default_rng(7)),
]


def _check_invariants(topo, part):
    n = topo.n
    # Every node in exactly one block.
    cover = np.concatenate(part.owned)
    assert sorted(cover.tolist()) == list(range(n))
    assert part.block_sizes.sum() == n
    assert all(np.array_equal(part.owned[p], np.sort(part.owned[p])) for p in range(part.blocks))

    # Ghost sets are the exact out-of-block neighbour set.
    for p in range(part.blocks):
        owned = set(part.owned[p].tolist())
        expected = set()
        for node in owned:
            for nb in topo.neighbors(node):
                if int(nb) not in owned:
                    expected.add(int(nb))
        assert set(part.ghosts[p].tolist()) == expected
        assert np.array_equal(part.ghosts[p], np.sort(part.ghosts[p]))

    # Cut edges are exactly the cross-block edges.
    edges = topo.edges
    expected_cut = {
        e for e in range(topo.m)
        if part.assignment[edges[e, 0]] != part.assignment[edges[e, 1]]
    }
    assert set(part.cut_edges.tolist()) == expected_cut

    # Halo plans are symmetric: p sends to q exactly the nodes q receives
    # from p, in the same (global-id) order, and links pair up.
    links = {(p, link.peer): link for p in range(part.blocks) for link in part.halo_links[p]}
    for (p, q), link in links.items():
        assert (q, p) in links, f"link {p}->{q} has no reverse"
        sent_nodes = part.owned[p][link.send_idx]
        recv_nodes = part.ghosts[q][links[(q, p)].recv_idx]
        assert np.array_equal(sent_nodes, recv_nodes)
        # Everything sent is owned by p and ghosted by q.
        assert set(sent_nodes.tolist()) <= set(part.owned[p].tolist())
        assert set(sent_nodes.tolist()) <= set(part.ghosts[q].tolist())
    # Every ghost value arrives through exactly one link.
    for p in range(part.blocks):
        covered = np.concatenate(
            [link.recv_idx for link in part.halo_links[p]]
            or [np.empty(0, dtype=np.int64)]
        )
        assert sorted(covered.tolist()) == list(range(part.ghosts[p].size))

    # Interior/boundary rows partition each block's owned rows, and the
    # boundary is exactly the owned endpoints of cut edges (the rows
    # whose update reads ghost columns).
    for p in range(part.blocks):
        interior = part.interior_owned[p]
        boundary = part.boundary_owned[p]
        both = np.concatenate([interior, boundary])
        assert sorted(both.tolist()) == list(range(part.owned[p].size))
        owned = set(part.owned[p].tolist())
        expected_boundary = {
            i for i, node in enumerate(part.owned[p])
            if any(int(nb) not in owned for nb in topo.neighbors(int(node)))
        }
        assert set(boundary.tolist()) == expected_boundary
        assert np.array_equal(boundary, np.sort(boundary))
        assert np.array_equal(interior, np.sort(interior))

    # Metrics agree with the derived structure.
    m = part.metrics()
    assert m["edge_cut"] == len(expected_cut)
    assert m["halo_volume"] == sum(g.size for g in part.ghosts)
    assert m["max_halo"] == max((g.size for g in part.ghosts), default=0)
    assert m["block_max"] == int(part.block_sizes.max())
    assert m["imbalance"] >= 1.0
    assert m["interior_rows"] + m["boundary_rows"] == n
    assert m["boundary_fraction"] == round(m["boundary_rows"] / n, 4)
    if len(expected_cut) == 0:
        assert m["boundary_rows"] == 0 and m["boundary_fraction"] == 0.0


class TestPartitionInvariants:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("P", [1, 2, 4, 7])
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_invariants(self, topo, P, strategy):
        _check_invariants(topo, make_partition(topo, P, strategy))

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_dynamic_edge_failures_keep_invariants(self, strategy):
        """The fixed assignment stays valid while the edge set (and hence
        ghosts, cut set and halo plans) changes under edge failures."""
        base = torus_2d(8, 8)
        part = make_partition(base, 4, strategy)
        rng = np.random.default_rng(3)
        for _ in range(5):
            mask = rng.random(base.m) < 0.6
            failed = base.subgraph_with_edges(mask)
            sub = part.with_topology(failed)
            assert np.array_equal(sub.assignment, part.assignment)
            _check_invariants(failed, sub)
            # Fewer edges can only shrink the communication structure.
            assert sub.cut_edges.size <= part.cut_edges.size
            assert sub.halo_volume <= part.halo_volume

    def test_block_sizes_near_equal(self):
        topo = torus_2d(8, 8)
        for strategy in PARTITION_STRATEGIES:
            part = make_partition(topo, 7, strategy)
            sizes = part.block_sizes
            assert sizes.max() - sizes.min() <= 1

    def test_bfs_blocks_connected_on_torus(self):
        """The BFS grower's blocks are connected subgraphs on a connected
        graph (the property that keeps its cuts short)."""
        topo = torus_2d(8, 8)
        part = make_partition(topo, 4, "bfs")
        for p in range(part.blocks):
            owned = set(part.owned[p].tolist())
            seen = {min(owned)}
            frontier = [min(owned)]
            while frontier:
                nxt = []
                for node in frontier:
                    for nb in topo.neighbors(node):
                        if int(nb) in owned and int(nb) not in seen:
                            seen.add(int(nb))
                            nxt.append(int(nb))
                frontier = nxt
            assert seen == owned

    def test_contiguous_is_id_ranges(self):
        topo = torus_2d(4, 4)
        a = contiguous_assignment(topo, 3)
        assert np.array_equal(a, np.sort(a))
        assert np.bincount(a).tolist() == [6, 5, 5]

    def test_bfs_assignment_total_on_disconnected(self):
        """Edge failures can disconnect the graph; the grower must still
        assign every node."""
        base = torus_2d(6, 6)
        empty = base.subgraph_with_edges(np.zeros(base.m, dtype=bool))
        a = bfs_assignment(empty, 4)
        assert (a >= 0).all()
        assert np.bincount(a, minlength=4).min() > 0

    def test_caching_per_topology(self):
        topo = torus_2d(4, 4)
        a = contiguous_assignment(topo, 2)
        p1 = Partition.for_topology(topo, a)
        p2 = Partition.for_topology(topo, a)
        assert p1 is p2
        p3 = Partition.for_topology(topo, contiguous_assignment(topo, 4))
        assert p3 is not p1


class TestPartitionValidation:
    def test_empty_block_rejected(self):
        topo = torus_2d(4, 4)
        a = np.zeros(topo.n, dtype=np.int64)
        a[0] = 2  # block 1 empty
        with pytest.raises(ValueError, match="own no nodes"):
            Partition(topo, a)

    def test_wrong_shape_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(ValueError, match="shape"):
            Partition(topo, np.zeros(5, dtype=np.int64))

    def test_negative_block_rejected(self):
        topo = torus_2d(4, 4)
        a = np.zeros(topo.n, dtype=np.int64)
        a[3] = -1
        with pytest.raises(ValueError, match="non-negative"):
            Partition(topo, a)

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_too_many_blocks_rejected(self, strategy):
        from repro.graphs.generators import cycle

        with pytest.raises(ValueError, match="blocks must be in"):
            make_partition(cycle(4), 5, strategy)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            make_partition(torus_2d(4, 4), 2, "metis")

    def test_with_topology_node_count_mismatch(self):
        part = make_partition(torus_2d(4, 4), 2)
        with pytest.raises(ValueError, match="nodes"):
            part.with_topology(torus_2d(4, 5))


class TestParsePartitions:
    @pytest.mark.parametrize("spec,expected", [
        (1, (1, "contiguous")),
        (4, (4, "contiguous")),
        ("4", (4, "contiguous")),
        ("4:bfs", (4, "bfs")),
        ("2:contiguous", (2, "contiguous")),
        (" 3:BFS ", (3, "bfs")),
    ])
    def test_accepted_forms(self, spec, expected):
        assert parse_partitions(spec) == expected

    @pytest.mark.parametrize("spec", [0, -1, "0", "-3", "x", "4:metis", "bfs:4", 2.5, True, None])
    def test_rejected_forms(self, spec):
        with pytest.raises(ValueError):
            parse_partitions(spec)
