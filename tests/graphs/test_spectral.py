"""Unit tests for spectral quantities (with closed-form oracles)."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs import spectral as sp


class TestMatrices:
    def test_adjacency_symmetric(self, torus):
        a = sp.adjacency_matrix(torus)
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * torus.m

    def test_adjacency_sparse_matches_dense(self, torus):
        dense = sp.adjacency_matrix(torus)
        sparse = sp.adjacency_matrix(torus, sparse=True).toarray()
        assert np.array_equal(dense, sparse)

    def test_laplacian_rows_sum_zero(self, any_topology):
        lap = sp.laplacian_matrix(any_topology)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_laplacian_diagonal_is_degree(self, any_topology):
        lap = sp.laplacian_matrix(any_topology)
        assert np.array_equal(np.diag(lap), any_topology.degrees.astype(float))

    def test_laplacian_sparse_matches_dense(self, torus):
        dense = sp.laplacian_matrix(torus)
        sparse = sp.laplacian_matrix(torus, sparse=True).toarray()
        assert np.array_equal(dense, sparse)

    def test_diffusion_matrix_doubly_stochastic(self, any_topology):
        m = sp.diffusion_matrix(any_topology)
        assert np.allclose(m.sum(axis=0), 1.0)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_diffusion_matrix_nonnegative_with_default_alpha(self, any_topology):
        m = sp.diffusion_matrix(any_topology)
        assert (m >= -1e-12).all()

    def test_diffusion_matrix_alpha_validation(self, torus):
        with pytest.raises(ValueError):
            sp.diffusion_matrix(torus, alpha=0.0)


class TestEigenvalues:
    def test_spectrum_sorted_and_first_zero(self, any_topology):
        vals = sp.laplacian_eigenvalues(any_topology)
        assert vals[0] == pytest.approx(0.0, abs=1e-9)
        assert (np.diff(vals) >= -1e-9).all()

    def test_spectrum_sums_to_degree_total(self, any_topology):
        vals = sp.laplacian_eigenvalues(any_topology)
        assert vals.sum() == pytest.approx(any_topology.degrees.sum(), rel=1e-9)

    def test_lambda2_cycle_closed_form(self):
        for n in (4, 8, 16, 32):
            assert sp.lambda_2(g.cycle(n)) == pytest.approx(sp.lambda2_cycle(n), rel=1e-9)

    def test_lambda2_path_closed_form(self):
        for n in (4, 9, 17):
            assert sp.lambda_2(g.path(n)) == pytest.approx(sp.lambda2_path(n), rel=1e-9)

    def test_lambda2_complete_closed_form(self):
        assert sp.lambda_2(g.complete(9)) == pytest.approx(9.0, rel=1e-9)

    def test_lambda2_star_closed_form(self):
        assert sp.lambda_2(g.star(13)) == pytest.approx(1.0, rel=1e-9)

    def test_lambda2_hypercube_closed_form(self):
        for d in (2, 3, 5):
            assert sp.lambda_2(g.hypercube(d)) == pytest.approx(2.0, rel=1e-9)

    def test_lambda2_torus_closed_form(self):
        assert sp.lambda_2(g.torus_2d(4, 6)) == pytest.approx(sp.lambda2_torus(4, 6), rel=1e-9)

    def test_lambda2_zero_iff_disconnected(self):
        from repro.graphs.topology import Topology

        disconnected = Topology(4, [(0, 1), (2, 3)])
        assert sp.lambda_2(disconnected) == pytest.approx(0.0, abs=1e-9)
        assert sp.lambda_2(g.path(4)) > 0

    def test_distinct_eigenvalues_hypercube(self):
        # d-cube Laplacian eigenvalues are 2k for k = 0..d.
        vals = sp.distinct_laplacian_eigenvalues(g.hypercube(4))
        assert np.allclose(vals, [0, 2, 4, 6, 8])

    def test_distinct_eigenvalues_complete(self):
        vals = sp.distinct_laplacian_eigenvalues(g.complete(8))
        assert np.allclose(vals, [0, 8])


class TestGammaMu:
    def test_gamma_in_unit_interval(self, any_topology):
        gam = sp.gamma(any_topology)
        assert 0.0 <= gam < 1.0

    def test_gamma_complete_formula(self):
        # K_n with alpha = 1/n: eigenvalues 1 - n/n = 0 (multiplicity n-1), 1.
        assert sp.gamma(g.complete(8)) == pytest.approx(0.0, abs=1e-9)

    def test_gamma_matches_explicit_eigendecomposition(self, torus):
        m = sp.diffusion_matrix(torus)
        eigs = np.sort(np.abs(np.linalg.eigvalsh(m)))[::-1]
        assert sp.gamma(torus) == pytest.approx(eigs[1], rel=1e-9)

    def test_mu_is_one_minus_gamma(self, torus):
        assert sp.eigenvalue_gap(torus) == pytest.approx(1.0 - sp.gamma(torus), rel=1e-12)

    def test_single_node_gamma_zero(self):
        from repro.graphs.topology import Topology

        assert sp.gamma(Topology(1, [])) == 0.0


class TestProfile:
    def test_profile_fields(self, torus):
        prof = sp.spectral_profile(torus)
        assert prof.n == torus.n
        assert prof.delta == torus.max_degree
        assert prof.lambda2 == pytest.approx(sp.lambda_2(torus))
        assert prof.mu == pytest.approx(1.0 - prof.gamma)
        assert "torus" in prof.describe()

    def test_profile_cached_spectrum_reused(self, torus):
        # Two calls must agree exactly (cache hit, same array).
        assert sp.spectral_profile(torus) == sp.spectral_profile(torus)
