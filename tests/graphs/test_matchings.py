"""Unit tests for random matchings and edge colorings."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs.matchings import (
    greedy_edge_coloring,
    is_matching,
    luby_matching,
    luby_matchings,
    matching_mask_valid,
    round_robin_matchings,
    two_stage_matching,
    two_stage_matchings,
)
from repro.simulation.ensemble import spawn_rngs


class TestIsMatching:
    def test_empty_is_matching(self, torus):
        assert is_matching(torus, np.empty(0, dtype=np.int64))

    def test_disjoint_edges_are_matching(self):
        t = g.path(5)  # edges (0,1),(1,2),(2,3),(3,4)
        assert is_matching(t, np.asarray([0, 2]))

    def test_sharing_endpoint_is_not_matching(self):
        t = g.path(5)
        assert not is_matching(t, np.asarray([0, 1]))


class TestLubyMatching:
    def test_always_a_matching(self, any_topology, rng):
        for _ in range(20):
            m = luby_matching(any_topology, rng)
            assert is_matching(any_topology, m)

    def test_nonempty_on_graphs_with_edges(self, torus, rng):
        # A local-min edge always exists when m > 0.
        for _ in range(10):
            assert luby_matching(torus, rng).size > 0

    def test_empty_graph(self, rng):
        from repro.graphs.topology import Topology

        assert luby_matching(Topology(3, []), rng).size == 0

    def test_edge_probability_at_least_inverse_2delta(self, rng):
        # Cycle: each edge has 2 neighbours + itself; local-min prob = 1/3
        # exactly. Check the empirical frequency against 1/(2 delta) = 1/4.
        topo = g.cycle(12)
        rounds = 2000
        hits = np.zeros(topo.m)
        for _ in range(rounds):
            hits[luby_matching(topo, rng)] += 1
        freq = hits / rounds
        assert (freq > 1.0 / (2 * topo.max_degree)).all()

    def test_single_edge_always_selected(self, rng):
        from repro.graphs.topology import Topology

        t = Topology(2, [(0, 1)])
        assert luby_matching(t, rng).tolist() == [0]


class TestTwoStageMatching:
    def test_always_a_matching(self, any_topology, rng):
        for _ in range(20):
            m = two_stage_matching(any_topology, rng)
            assert is_matching(any_topology, m)

    def test_empty_graph(self, rng):
        from repro.graphs.topology import Topology

        assert two_stage_matching(Topology(3, []), rng).size == 0

    def test_edge_probability_at_least_inverse_8delta(self, rng):
        # [GM94]'s guarantee: Pr[e in M] >= 1/(8 delta).
        topo = g.cycle(10)
        rounds = 4000
        hits = np.zeros(topo.m)
        for _ in range(rounds):
            hits[two_stage_matching(topo, rng)] += 1
        freq = hits / rounds
        floor = 1.0 / (8 * topo.max_degree)
        assert (freq > floor).all(), f"min freq {freq.min():.4f} <= {floor:.4f}"

    def test_matching_nonempty_often(self, torus, rng):
        nonempty = sum(two_stage_matching(torus, rng).size > 0 for _ in range(50))
        assert nonempty > 40


class TestBatchedMatchings:
    """Per-replica batched generators: valid matchings, bit-for-bit serial."""

    B = 6

    @pytest.mark.parametrize("batch_fn,serial_fn", [
        (luby_matchings, luby_matching),
        (two_stage_matchings, two_stage_matching),
    ])
    def test_valid_matchings_per_replica(self, any_topology, batch_fn, serial_fn):
        mask = batch_fn(any_topology, spawn_rngs(3, self.B))
        assert mask.shape == (any_topology.m, self.B)
        assert matching_mask_valid(any_topology, mask).all()
        for b in range(self.B):
            assert is_matching(any_topology, np.flatnonzero(mask[:, b]))

    @pytest.mark.parametrize("batch_fn,serial_fn", [
        (luby_matchings, luby_matching),
        (two_stage_matchings, two_stage_matching),
    ])
    def test_bit_for_bit_vs_serial_streams(self, any_topology, batch_fn, serial_fn):
        """Column b equals the serial generator run on replica b's stream."""
        for seed in (0, 7, 991):
            mask = batch_fn(any_topology, spawn_rngs(seed, self.B))
            for b in range(self.B):
                want = serial_fn(any_topology, spawn_rngs(seed, self.B)[b])
                assert np.array_equal(np.flatnonzero(mask[:, b]), want), (
                    f"{batch_fn.__name__} seed={seed} replica={b}"
                )

    @pytest.mark.parametrize("batch_fn", [luby_matchings, two_stage_matchings])
    def test_empty_graph(self, batch_fn):
        from repro.graphs.topology import Topology

        mask = batch_fn(Topology(3, []), spawn_rngs(0, 4))
        assert mask.shape == (0, 4)

    @pytest.mark.parametrize("batch_fn", [luby_matchings, two_stage_matchings])
    def test_replicas_draw_independently(self, torus, batch_fn):
        mask = batch_fn(torus, spawn_rngs(5, self.B))
        cols = {mask[:, b].tobytes() for b in range(self.B)}
        assert len(cols) > 1, "replica matchings should differ"

    @pytest.mark.parametrize("batch_fn,serial_fn", [
        (luby_matchings, luby_matching),
        (two_stage_matchings, two_stage_matching),
    ])
    def test_trailing_isolated_nodes(self, batch_fn, serial_fn):
        """Regression: isolated high-index nodes must not corrupt the last
        real node's incidence segment (the segmented reductions previously
        clamped their empty CSR segments into it, yielding non-matchings)."""
        from repro.graphs.topology import Topology

        topo = Topology(5, [(0, 1), (1, 3), (2, 3)])  # node 4 isolated
        for seed in range(12):
            mask = batch_fn(topo, spawn_rngs(seed, self.B))
            assert matching_mask_valid(topo, mask).all()
            for b in range(self.B):
                want = serial_fn(topo, spawn_rngs(seed, self.B)[b])
                assert np.array_equal(np.flatnonzero(mask[:, b]), want), (seed, b)

    def test_mask_valid_with_isolated_nodes(self):
        from repro.graphs.topology import Topology

        topo = Topology(5, [(0, 1), (1, 3), (2, 3)])
        overlap = np.zeros((3, 1), dtype=bool)
        overlap[[1, 2], 0] = True  # edges (1,3) and (2,3) share node 3
        assert not matching_mask_valid(topo, overlap)[0]
        ok = np.zeros((3, 1), dtype=bool)
        ok[[0, 2], 0] = True
        assert matching_mask_valid(topo, ok)[0]

    def test_matching_mask_valid_flags_overlap(self, torus):
        mask = np.zeros((torus.m, 2), dtype=bool)
        # Two edges sharing a node in replica 0 only.
        node = int(torus.edges[0, 0])
        incident = np.flatnonzero((torus.edges == node).any(axis=1))[:2]
        mask[incident, 0] = True
        mask[incident[0], 1] = True
        valid = matching_mask_valid(torus, mask)
        assert not valid[0] and valid[1]


class TestEdgeColoring:
    def test_classes_are_matchings(self, any_topology):
        for cls in greedy_edge_coloring(any_topology):
            assert is_matching(any_topology, cls)

    def test_classes_partition_edges(self, any_topology):
        classes = greedy_edge_coloring(any_topology)
        all_ids = sorted(int(e) for cls in classes for e in cls)
        assert all_ids == list(range(any_topology.m))

    def test_color_count_within_greedy_bound(self, any_topology):
        classes = greedy_edge_coloring(any_topology)
        if any_topology.m:
            assert len(classes) <= 2 * any_topology.max_degree - 1

    def test_round_robin_drops_empty_classes(self, torus):
        for cls in round_robin_matchings(torus):
            assert cls.size > 0

    def test_empty_graph_coloring(self):
        from repro.graphs.topology import Topology

        assert greedy_edge_coloring(Topology(3, [])) == []
