"""Unit tests for random matchings and edge colorings."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs.matchings import (
    greedy_edge_coloring,
    is_matching,
    luby_matching,
    round_robin_matchings,
    two_stage_matching,
)


class TestIsMatching:
    def test_empty_is_matching(self, torus):
        assert is_matching(torus, np.empty(0, dtype=np.int64))

    def test_disjoint_edges_are_matching(self):
        t = g.path(5)  # edges (0,1),(1,2),(2,3),(3,4)
        assert is_matching(t, np.asarray([0, 2]))

    def test_sharing_endpoint_is_not_matching(self):
        t = g.path(5)
        assert not is_matching(t, np.asarray([0, 1]))


class TestLubyMatching:
    def test_always_a_matching(self, any_topology, rng):
        for _ in range(20):
            m = luby_matching(any_topology, rng)
            assert is_matching(any_topology, m)

    def test_nonempty_on_graphs_with_edges(self, torus, rng):
        # A local-min edge always exists when m > 0.
        for _ in range(10):
            assert luby_matching(torus, rng).size > 0

    def test_empty_graph(self, rng):
        from repro.graphs.topology import Topology

        assert luby_matching(Topology(3, []), rng).size == 0

    def test_edge_probability_at_least_inverse_2delta(self, rng):
        # Cycle: each edge has 2 neighbours + itself; local-min prob = 1/3
        # exactly. Check the empirical frequency against 1/(2 delta) = 1/4.
        topo = g.cycle(12)
        rounds = 2000
        hits = np.zeros(topo.m)
        for _ in range(rounds):
            hits[luby_matching(topo, rng)] += 1
        freq = hits / rounds
        assert (freq > 1.0 / (2 * topo.max_degree)).all()

    def test_single_edge_always_selected(self, rng):
        from repro.graphs.topology import Topology

        t = Topology(2, [(0, 1)])
        assert luby_matching(t, rng).tolist() == [0]


class TestTwoStageMatching:
    def test_always_a_matching(self, any_topology, rng):
        for _ in range(20):
            m = two_stage_matching(any_topology, rng)
            assert is_matching(any_topology, m)

    def test_empty_graph(self, rng):
        from repro.graphs.topology import Topology

        assert two_stage_matching(Topology(3, []), rng).size == 0

    def test_edge_probability_at_least_inverse_8delta(self, rng):
        # [GM94]'s guarantee: Pr[e in M] >= 1/(8 delta).
        topo = g.cycle(10)
        rounds = 4000
        hits = np.zeros(topo.m)
        for _ in range(rounds):
            hits[two_stage_matching(topo, rng)] += 1
        freq = hits / rounds
        floor = 1.0 / (8 * topo.max_degree)
        assert (freq > floor).all(), f"min freq {freq.min():.4f} <= {floor:.4f}"

    def test_matching_nonempty_often(self, torus, rng):
        nonempty = sum(two_stage_matching(torus, rng).size > 0 for _ in range(50))
        assert nonempty > 40


class TestEdgeColoring:
    def test_classes_are_matchings(self, any_topology):
        for cls in greedy_edge_coloring(any_topology):
            assert is_matching(any_topology, cls)

    def test_classes_partition_edges(self, any_topology):
        classes = greedy_edge_coloring(any_topology)
        all_ids = sorted(int(e) for cls in classes for e in cls)
        assert all_ids == list(range(any_topology.m))

    def test_color_count_within_greedy_bound(self, any_topology):
        classes = greedy_edge_coloring(any_topology)
        if any_topology.m:
            assert len(classes) <= 2 * any_topology.max_degree - 1

    def test_round_robin_drops_empty_classes(self, torus):
        for cls in round_robin_matchings(torus):
            assert cls.size > 0

    def test_empty_graph_coloring(self):
        from repro.graphs.topology import Topology

        assert greedy_edge_coloring(Topology(3, [])) == []
