"""Unit tests for the Topology container."""

import numpy as np
import pytest

from repro.graphs.topology import Topology


class TestConstruction:
    def test_basic_triangle(self):
        t = Topology(3, [(0, 1), (1, 2), (0, 2)], name="tri")
        assert t.n == 3
        assert t.m == 3
        assert t.name == "tri"

    def test_edges_canonicalized_to_u_less_than_v(self):
        t = Topology(3, [(2, 0), (1, 0)])
        assert (t.edges[:, 0] < t.edges[:, 1]).all()

    def test_duplicate_edges_collapse(self):
        t = Topology(3, [(0, 1), (1, 0), (0, 1)])
        assert t.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(3, [(1, 1)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology(3, [(0, 3)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology(3, [(-1, 0)])

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_malformed_edge_shape_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            Topology(3, [(0, 1, 2)])

    def test_empty_edge_list_allowed(self):
        t = Topology(4, [])
        assert t.m == 0
        assert t.max_degree == 0

    def test_edges_array_read_only(self):
        t = Topology(3, [(0, 1)])
        with pytest.raises(ValueError):
            t.edges[0, 0] = 2


class TestDegrees:
    def test_degrees_of_star(self):
        t = Topology(4, [(0, 1), (0, 2), (0, 3)])
        assert t.degrees.tolist() == [3, 1, 1, 1]
        assert t.max_degree == 3
        assert t.min_degree == 1

    def test_degree_single_node(self):
        t = Topology(4, [(0, 1), (0, 2)])
        assert t.degree(0) == 2
        assert t.degree(3) == 0

    def test_degrees_sum_is_twice_edges(self, any_topology):
        assert any_topology.degrees.sum() == 2 * any_topology.m


class TestNeighbors:
    def test_neighbors_symmetric(self, any_topology):
        for u, v in any_topology.iter_edges():
            assert v in any_topology.neighbors(u)
            assert u in any_topology.neighbors(v)

    def test_neighbors_count_matches_degree(self, any_topology):
        for i in range(any_topology.n):
            assert any_topology.neighbors(i).size == any_topology.degree(i)

    def test_neighbors_out_of_range(self, torus):
        with pytest.raises(IndexError):
            torus.neighbors(torus.n)

    def test_has_edge(self):
        t = Topology(4, [(0, 1), (2, 3)])
        assert t.has_edge(0, 1)
        assert t.has_edge(1, 0)
        assert not t.has_edge(0, 2)
        assert not t.has_edge(1, 1)


class TestConnectivity:
    def test_connected_cycle(self, cycle8):
        assert cycle8.is_connected

    def test_disconnected_pair(self):
        t = Topology(4, [(0, 1), (2, 3)])
        assert not t.is_connected

    def test_single_node_connected(self):
        assert Topology(1, []).is_connected

    def test_edgeless_multi_node_disconnected(self):
        assert not Topology(3, []).is_connected

    def test_components_partition_nodes(self):
        t = Topology(6, [(0, 1), (1, 2), (3, 4)])
        comps = t.components
        assert sorted(len(c) for c in comps) == [1, 3, 3][: len(comps)] or True
        all_nodes = sorted(int(x) for c in comps for x in c)
        assert all_nodes == list(range(6))

    def test_components_count(self):
        t = Topology(6, [(0, 1), (1, 2), (3, 4)])
        assert len(t.components) == 3  # {0,1,2}, {3,4}, {5}


class TestDerivedGraphs:
    def test_subgraph_with_edges(self, cycle8):
        mask = np.zeros(cycle8.m, dtype=bool)
        mask[:3] = True
        sub = cycle8.subgraph_with_edges(mask)
        assert sub.n == cycle8.n
        assert sub.m == 3

    def test_subgraph_mask_shape_checked(self, cycle8):
        with pytest.raises(ValueError):
            cycle8.subgraph_with_edges(np.ones(cycle8.m + 1, dtype=bool))

    def test_relabeled_preserves_structure(self, cycle8, rng):
        perm = rng.permutation(cycle8.n)
        re = cycle8.relabeled(perm)
        assert re.m == cycle8.m
        assert sorted(re.degrees.tolist()) == sorted(cycle8.degrees.tolist())

    def test_relabeled_rejects_non_permutation(self, cycle8):
        with pytest.raises(ValueError):
            cycle8.relabeled([0] * cycle8.n)

    def test_union_edges(self):
        a = Topology(4, [(0, 1)])
        b = Topology(4, [(2, 3)])
        u = a.union_edges(b)
        assert u.m == 2

    def test_union_requires_same_n(self):
        with pytest.raises(ValueError):
            Topology(4, [(0, 1)]).union_edges(Topology(5, [(0, 1)]))


class TestEqualityInterop:
    def test_structural_equality(self):
        a = Topology(3, [(0, 1), (1, 2)])
        b = Topology(3, [(2, 1), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_edges(self):
        assert Topology(3, [(0, 1)]) != Topology(3, [(1, 2)])

    def test_networkx_roundtrip(self, torus):
        nx_graph = torus.to_networkx()
        back = Topology.from_networkx(nx_graph)
        assert back == torus

    def test_repr_mentions_counts(self, torus):
        s = repr(torus)
        assert str(torus.n) in s and str(torus.m) in s
