"""Unit tests for edge expansion."""

import pytest

from repro.graphs import generators as g
from repro.graphs.expansion import cheeger_bounds, edge_expansion, edge_expansion_exact
from repro.graphs.topology import Topology


class TestExactExpansion:
    def test_complete_graph(self):
        # K_n: any |S|=k cut has k(n-k) edges; minimized ratio = ceil(n/2).
        assert edge_expansion_exact(g.complete(4)) == pytest.approx(2.0)
        assert edge_expansion_exact(g.complete(6)) == pytest.approx(3.0)

    def test_cycle(self):
        # Cycle: best cut is a contiguous arc of n/2 nodes: 2 edges / (n/2).
        assert edge_expansion_exact(g.cycle(8)) == pytest.approx(2 / 4)

    def test_path(self):
        # Path: cut the middle edge: 1 edge / (n/2).
        assert edge_expansion_exact(g.path(8)) == pytest.approx(1 / 4)

    def test_star(self):
        # Star: taking k leaves cuts k edges => ratio 1 for any k <= n/2.
        assert edge_expansion_exact(g.star(7)) == pytest.approx(1.0)

    def test_barbell_bottleneck(self):
        # Two K_4 joined by a bridge: S = one clique, 1 edge / 4 nodes.
        assert edge_expansion_exact(g.barbell(4)) == pytest.approx(1 / 4)

    def test_disconnected_zero(self):
        t = Topology(4, [(0, 1), (2, 3)])
        assert edge_expansion_exact(t) == pytest.approx(0.0)

    def test_too_large_raises(self):
        with pytest.raises(ValueError, match="exponential"):
            edge_expansion_exact(g.cycle(30))

    def test_single_node_raises(self):
        with pytest.raises(ValueError):
            edge_expansion_exact(Topology(1, []))


class TestCheegerBounds:
    @pytest.mark.parametrize("spec", ["cycle:10", "path:8", "complete:6", "star:8", "petersen", "hypercube:3"])
    def test_exact_value_within_bounds(self, spec):
        topo = g.by_name(spec)
        lo, hi = cheeger_bounds(topo)
        val = edge_expansion_exact(topo)
        assert lo - 1e-9 <= val <= hi + 1e-9

    def test_estimate_small_graph_is_exact(self):
        est = edge_expansion(g.cycle(10))
        assert est.exact
        assert est.value == pytest.approx(edge_expansion_exact(g.cycle(10)))

    def test_estimate_large_graph_uses_bounds(self):
        est = edge_expansion(g.cycle(64))
        assert not est.exact
        assert est.lower_bound <= est.value <= est.upper_bound
