"""Unit tests for dynamic-network models."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs.dynamic import (
    AdversarialDynamics,
    AlternatingDynamics,
    EdgeSamplingDynamics,
    MarkovEdgeDynamics,
    StaticDynamics,
    average_normalized_gap,
)
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology


class TestStaticDynamics:
    def test_same_graph_every_round(self, torus):
        dyn = StaticDynamics(torus)
        assert dyn.topology_at(0) == torus
        assert dyn.topology_at(100) == torus

    def test_average_gap_matches_static_value(self, torus):
        dyn = StaticDynamics(torus)
        expected = lambda_2(torus) / torus.max_degree
        assert dyn.average_gap(5) == pytest.approx(expected)


class TestEdgeSampling:
    def test_deterministic_given_seed_and_round(self, torus):
        a = EdgeSamplingDynamics(torus, 0.5, seed=7)
        b = EdgeSamplingDynamics(torus, 0.5, seed=7)
        for k in (0, 3, 10):
            assert a.topology_at(k) == b.topology_at(k)

    def test_different_rounds_differ(self, torus):
        dyn = EdgeSamplingDynamics(torus, 0.5, seed=7)
        assert dyn.topology_at(0) != dyn.topology_at(1)

    def test_p_one_keeps_everything(self, torus):
        dyn = EdgeSamplingDynamics(torus, 1.0, seed=7)
        assert dyn.topology_at(4).m == torus.m

    def test_p_validated(self, torus):
        with pytest.raises(ValueError):
            EdgeSamplingDynamics(torus, 0.0)
        with pytest.raises(ValueError):
            EdgeSamplingDynamics(torus, 1.5)

    def test_subgraph_edge_count_plausible(self, torus):
        dyn = EdgeSamplingDynamics(torus, 0.5, seed=3)
        counts = [dyn.topology_at(k).m for k in range(50)]
        mean = np.mean(counts)
        assert 0.35 * torus.m < mean < 0.65 * torus.m

    def test_normalized_gaps_shape_and_range(self, torus):
        dyn = EdgeSamplingDynamics(torus, 0.8, seed=1)
        gaps = dyn.normalized_gaps(10)
        assert gaps.shape == (10,)
        assert (gaps >= 0).all()
        assert (gaps <= 1.0 + 1e-9).all()  # lambda2 <= 2*delta, /delta <= 2; torus: <= 1 comfortably


class TestAlternating:
    def test_cycles_through_phases(self):
        rows = g.by_name("grid:3x3")
        cols = rows.relabeled(list(range(9)))  # structurally equal stand-in
        dyn = AlternatingDynamics([rows, cols])
        assert dyn.topology_at(0) == rows
        assert dyn.topology_at(1) == cols
        assert dyn.topology_at(2) == rows

    def test_requires_common_node_set(self):
        with pytest.raises(ValueError):
            AlternatingDynamics([g.cycle(4), g.cycle(5)])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            AlternatingDynamics([])


class TestAdversarial:
    def test_schedule_then_fallback(self, torus):
        empty = Topology(torus.n, [])
        dyn = AdversarialDynamics([empty, empty], torus)
        assert dyn.topology_at(0).m == 0
        assert dyn.topology_at(1).m == 0
        assert dyn.topology_at(2) == torus

    def test_disconnected_rounds_contribute_zero_gap(self, torus):
        empty = Topology(torus.n, [])
        dyn = AdversarialDynamics([empty], torus)
        gaps = dyn.normalized_gaps(3)
        assert gaps[0] == 0.0
        assert gaps[1] > 0.0

    def test_node_set_checked(self, torus):
        with pytest.raises(ValueError):
            AdversarialDynamics([Topology(torus.n + 1, [])], torus)


class TestMarkov:
    def test_round_zero_all_up(self, torus):
        dyn = MarkovEdgeDynamics(torus, 0.3, 0.3, seed=2)
        assert dyn.topology_at(0).m == torus.m

    def test_deterministic_replay(self, torus):
        a = MarkovEdgeDynamics(torus, 0.3, 0.4, seed=2)
        b = MarkovEdgeDynamics(torus, 0.3, 0.4, seed=2)
        # Access out of order on purpose: state is replayed from round 0.
        t5_a = a.topology_at(5)
        _ = b.topology_at(2)
        assert t5_a == b.topology_at(5)

    def test_stationary_probability(self):
        dyn = MarkovEdgeDynamics(g.cycle(4), p_fail=0.1, p_recover=0.3)
        assert dyn.stationary_up_probability == pytest.approx(0.75)

    def test_probability_validation(self, torus):
        with pytest.raises(ValueError):
            MarkovEdgeDynamics(torus, -0.1, 0.5)

    def test_long_run_availability_near_stationary(self, torus):
        dyn = MarkovEdgeDynamics(torus, p_fail=0.2, p_recover=0.6, seed=9)
        frac = np.mean([dyn.topology_at(k).m / torus.m for k in range(60, 160)])
        assert abs(frac - dyn.stationary_up_probability) < 0.08


class TestAggregates:
    def test_average_normalized_gap_helper(self, torus):
        assert average_normalized_gap([torus, torus]) == pytest.approx(
            lambda_2(torus) / torus.max_degree
        )

    def test_average_gap_requires_rounds(self, torus):
        with pytest.raises(ValueError):
            StaticDynamics(torus).average_gap(0)

    def test_worst_threshold_term_skips_disconnected(self, torus):
        empty = Topology(torus.n, [])
        dyn = AdversarialDynamics([empty], torus)
        expected = torus.max_degree**3 / lambda_2(torus)
        assert dyn.worst_threshold_term(3) == pytest.approx(expected)

    def test_sequence_materialization(self, torus):
        dyn = EdgeSamplingDynamics(torus, 0.9, seed=0)
        seq = dyn.sequence(4)
        assert len(seq) == 4
        assert all(t.n == torus.n for t in seq)
