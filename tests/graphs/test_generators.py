"""Unit tests for graph-family generators."""

import numpy as np
import pytest

from repro.graphs import generators as g


class TestPathCycle:
    def test_path_counts(self):
        t = g.path(5)
        assert (t.n, t.m) == (5, 4)
        assert t.max_degree == 2
        assert t.degree(0) == 1 and t.degree(4) == 1

    def test_cycle_counts(self):
        t = g.cycle(6)
        assert (t.n, t.m) == (6, 6)
        assert set(t.degrees.tolist()) == {2}

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            g.cycle(2)

    def test_path_and_cycle_connected(self):
        assert g.path(10).is_connected
        assert g.cycle(10).is_connected


class TestDenseFamilies:
    def test_complete_counts(self):
        t = g.complete(6)
        assert t.m == 15
        assert set(t.degrees.tolist()) == {5}

    def test_star_counts(self):
        t = g.star(7)
        assert t.m == 6
        assert t.degree(0) == 6
        assert all(t.degree(i) == 1 for i in range(1, 7))

    def test_wheel_counts(self):
        t = g.wheel(6)  # hub + 5-cycle rim
        assert t.m == 10
        assert t.degree(0) == 5
        assert all(t.degree(i) == 3 for i in range(1, 6))

    def test_wheel_minimum(self):
        with pytest.raises(ValueError):
            g.wheel(3)


class TestGridTorus:
    def test_grid_counts(self):
        t = g.grid_2d(3, 4)
        assert t.n == 12
        assert t.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_torus_regularity(self):
        t = g.torus_2d(4, 5)
        assert t.n == 20
        assert set(t.degrees.tolist()) == {4}
        assert t.m == 2 * 20

    def test_torus_minimum_dims(self):
        with pytest.raises(ValueError):
            g.torus_2d(2, 5)

    def test_grid_connected(self):
        assert g.grid_2d(5, 7).is_connected


class TestHypercubeDeBruijn:
    def test_hypercube_counts(self):
        t = g.hypercube(4)
        assert t.n == 16
        assert set(t.degrees.tolist()) == {4}
        assert t.m == 4 * 16 // 2

    def test_hypercube_neighbors_differ_one_bit(self):
        t = g.hypercube(3)
        for u, v in t.iter_edges():
            assert bin(u ^ v).count("1") == 1

    def test_de_bruijn_counts(self):
        t = g.de_bruijn(4)
        assert t.n == 16
        assert t.max_degree <= 4
        assert t.is_connected

    def test_de_bruijn_successor_structure(self):
        t = g.de_bruijn(3)
        for v in range(t.n):
            for succ in ((2 * v) % t.n, (2 * v + 1) % t.n):
                if succ != v:
                    assert t.has_edge(v, succ)


class TestTrees:
    def test_binary_tree_counts(self):
        t = g.binary_tree(3)
        assert t.n == 15
        assert t.m == 14
        assert t.is_connected

    def test_k_ary_tree_counts(self):
        t = g.k_ary_tree(3, 2)
        assert t.n == 13  # 1 + 3 + 9
        assert t.m == 12

    def test_tree_max_degree(self):
        t = g.binary_tree(3)
        assert t.max_degree == 3  # internal node: parent + 2 children


class TestRandomFamilies:
    def test_random_regular_is_regular(self, rng):
        t = g.random_regular(20, 4, rng=rng)
        assert set(t.degrees.tolist()) == {4}
        assert t.is_connected

    def test_random_regular_parity_check(self, rng):
        with pytest.raises(ValueError):
            g.random_regular(7, 3, rng=rng)

    def test_random_regular_d_bounds(self, rng):
        with pytest.raises(ValueError):
            g.random_regular(4, 4, rng=rng)

    def test_random_regular_reproducible(self):
        a = g.random_regular(16, 4, rng=np.random.default_rng(5))
        b = g.random_regular(16, 4, rng=np.random.default_rng(5))
        assert a == b

    def test_erdos_renyi_p_extremes(self, rng):
        assert g.erdos_renyi(10, 0.0, rng=rng).m == 0
        assert g.erdos_renyi(10, 1.0, rng=rng).m == 45

    def test_erdos_renyi_p_validated(self, rng):
        with pytest.raises(ValueError):
            g.erdos_renyi(10, 1.5, rng=rng)


class TestStressFamilies:
    def test_barbell_counts(self):
        t = g.barbell(4)
        assert t.n == 8
        assert t.m == 2 * 6 + 1
        assert t.is_connected

    def test_lollipop_counts(self):
        t = g.lollipop(4, 3)
        assert t.n == 7
        assert t.m == 6 + 3

    def test_petersen(self):
        t = g.petersen()
        assert (t.n, t.m) == (10, 15)
        assert set(t.degrees.tolist()) == {3}


class TestByName:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("path:5", 5),
            ("cycle:6", 6),
            ("complete:4", 4),
            ("star:5", 5),
            ("wheel:6", 6),
            ("grid:2x3", 6),
            ("torus:3x3", 9),
            ("hypercube:3", 8),
            ("debruijn:3", 8),
            ("bintree:2", 7),
            ("barbell:3", 6),
            ("lollipop:3+2", 5),
            ("petersen", 10),
        ],
    )
    def test_resolves(self, spec, n):
        assert g.by_name(spec).n == n

    def test_seeded_regular_reproducible(self):
        assert g.by_name("regular:16x4@3") == g.by_name("regular:16x4@3")

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown topology family"):
            g.by_name("mobius:5")

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError):
            g.by_name("torus")

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError):
            g.by_name("torus:5")
