"""Unit tests for distance metrics."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs.metrics import (
    all_pairs_distances,
    bfs_distances,
    diameter,
    eccentricity,
    radius,
)
from repro.graphs.topology import Topology


class TestBFS:
    def test_path_distances(self):
        dist = bfs_distances(g.path(5), 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_cycle_wraps(self):
        dist = bfs_distances(g.cycle(6), 0)
        assert dist.tolist() == [0, 1, 2, 3, 2, 1]

    def test_unreachable_marked(self):
        t = Topology(4, [(0, 1)])
        dist = bfs_distances(t, 0)
        assert dist[1] == 1 and dist[2] == -1 and dist[3] == -1

    def test_source_range_checked(self):
        with pytest.raises(IndexError):
            bfs_distances(g.path(3), 5)

    def test_all_pairs_symmetric(self, torus):
        d = all_pairs_distances(torus)
        assert np.array_equal(d, d.T)
        assert (np.diag(d) == 0).all()

    def test_all_pairs_triangle_inequality(self, cube4):
        d = all_pairs_distances(cube4)
        n = cube4.n
        # spot-check: d[i,k] <= d[i,j] + d[j,k] on a sample
        rng = np.random.default_rng(0)
        for _ in range(100):
            i, j, k = rng.integers(0, n, 3)
            assert d[i, k] <= d[i, j] + d[j, k]


class TestDiameterRadius:
    @pytest.mark.parametrize(
        "build,expected",
        [
            (lambda: g.path(7), 6),
            (lambda: g.cycle(8), 4),
            (lambda: g.complete(5), 1),
            (lambda: g.star(9), 2),
            (lambda: g.hypercube(4), 4),
            (lambda: g.torus_2d(4, 4), 4),
            (lambda: g.petersen(), 2),
        ],
    )
    def test_known_diameters(self, build, expected):
        assert diameter(build()) == expected

    def test_radius_le_diameter(self, any_topology):
        if any_topology.is_connected:
            assert radius(any_topology) <= diameter(any_topology)

    def test_hypercube_distance_is_hamming(self):
        t = g.hypercube(4)
        d = all_pairs_distances(t)
        for u in range(16):
            for v in range(16):
                assert d[u, v] == bin(u ^ v).count("1")

    def test_eccentricity_disconnected_raises(self):
        t = Topology(4, [(0, 1)])
        with pytest.raises(ValueError, match="disconnected"):
            eccentricity(t, 0)

    def test_path_eccentricity_endpoints(self):
        t = g.path(6)
        assert eccentricity(t, 0) == 5
        assert eccentricity(t, 2) == 3
