"""Registry-driven property tests: every scheme honours the engine contract.

Instead of hand-writing invariants per scheme, these tests iterate the
balancer registry so any *future* scheme is automatically covered:

- load conservation (exact for discrete schemes, fp-tolerant otherwise);
- determinism given the RNG stream;
- no mutation of the input vector;
- non-negativity preservation for the schemes whose transfers are damped
  below the sender's surplus (all except the momentum/polynomial
  schemes, which legitimately overshoot);
- monotone potential for the monotone schemes.
"""

import numpy as np
import pytest

from repro.core.potential import potential
from repro.core.protocols import get_balancer, registered_balancers
from repro.graphs.generators import torus_2d

TOPO = torus_2d(4, 4)

#: schemes whose potential may transiently increase (momentum/polynomial)
NON_MONOTONE = {"sos", "ops"}
#: schemes that may transiently produce negative loads
MAY_GO_NEGATIVE = {"sos", "ops"}


def make(name):
    return get_balancer(name, TOPO)


def loads_for(bal, rng):
    if bal.mode == "discrete":
        return rng.integers(0, 2000, TOPO.n).astype(np.int64)
    return rng.uniform(0, 2000.0, TOPO.n)


@pytest.fixture(params=sorted(registered_balancers()))
def scheme(request):
    return request.param


class TestEngineContract:
    def test_conserves_load(self, scheme):
        bal = make(scheme)
        rng = np.random.default_rng(11)
        x = loads_for(bal, rng)
        total = x.sum()
        r = np.random.default_rng(0)
        for _ in range(8):
            x = bal.step(x if scheme not in MAY_GO_NEGATIVE else x, r)
            if bal.mode == "discrete":
                assert x.sum() == total
            else:
                assert x.sum() == pytest.approx(total, rel=1e-9)

    def test_deterministic_given_stream(self, scheme):
        rng = np.random.default_rng(7)
        loads = loads_for(make(scheme), rng)
        a_bal, b_bal = make(scheme), make(scheme)
        ra, rb = np.random.default_rng(3), np.random.default_rng(3)
        a, b = loads.copy(), loads.copy()
        for _ in range(5):
            a = a_bal.step(a, ra)
            b = b_bal.step(b, rb)
            assert np.array_equal(a, b)

    def test_input_not_mutated(self, scheme):
        bal = make(scheme)
        rng = np.random.default_rng(5)
        loads = loads_for(bal, rng)
        snapshot = loads.copy()
        bal.step(loads, np.random.default_rng(0))
        assert np.array_equal(loads, snapshot)

    def test_nonnegativity(self, scheme):
        if scheme in MAY_GO_NEGATIVE:
            pytest.skip("momentum/polynomial schemes legitimately overshoot")
        bal = make(scheme)
        rng = np.random.default_rng(13)
        x = loads_for(bal, rng)
        r = np.random.default_rng(1)
        for _ in range(10):
            x = bal.step(x, r)
            assert (x >= -1e-9).all()

    def test_monotone_potential(self, scheme):
        if scheme in NON_MONOTONE:
            pytest.skip("momentum/polynomial schemes are not potential-monotone")
        if scheme == "hetero-diffusion":
            pytest.skip("monotone in the *weighted* potential, tested separately")
        bal = make(scheme)
        rng = np.random.default_rng(17)
        x = loads_for(bal, rng)
        r = np.random.default_rng(2)
        for _ in range(10):
            new = bal.step(x, r)
            assert potential(new) <= potential(x) * (1 + 1e-9) + 1e-6
            x = new

    def test_reset_then_rerun_reproduces(self, scheme):
        bal = make(scheme)
        rng = np.random.default_rng(19)
        loads = loads_for(bal, rng)
        first = bal.step(loads, np.random.default_rng(4))
        bal.reset()
        second = bal.step(loads, np.random.default_rng(4))
        assert np.array_equal(first, second)

    def test_balanced_state_stays_balanced(self, scheme):
        bal = make(scheme)
        value = 10 if bal.mode == "discrete" else 10.0
        dtype = np.int64 if bal.mode == "discrete" else np.float64
        x = np.full(TOPO.n, value, dtype=dtype)
        r = np.random.default_rng(6)
        for _ in range(5):
            x = bal.step(x, r)
        assert np.allclose(np.asarray(x, dtype=np.float64), 10.0, atol=1e-9)
