"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as g
from repro.graphs.matchings import is_matching, luby_matching, two_stage_matching
from repro.graphs.spectral import (
    gamma,
    lambda_2,
    laplacian_eigenvalues,
    laplacian_matrix,
)
from repro.graphs.topology import Topology


@st.composite
def random_graph(draw):
    """An arbitrary simple graph on 2..16 nodes (possibly disconnected)."""
    n = draw(st.integers(min_value=2, max_value=16))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), max_size=len(possible), unique=True))
    return Topology(n, chosen)


@given(random_graph())
@settings(max_examples=80, deadline=None)
def test_laplacian_psd(topo):
    vals = laplacian_eigenvalues(topo)
    assert (vals >= -1e-9).all()


@given(random_graph())
@settings(max_examples=80, deadline=None)
def test_laplacian_trace_equals_degree_sum(topo):
    lap = laplacian_matrix(topo)
    assert np.trace(lap) == topo.degrees.sum()


@given(random_graph())
@settings(max_examples=80, deadline=None)
def test_lambda2_positive_iff_connected(topo):
    lam2 = lambda_2(topo)
    if topo.is_connected:
        assert lam2 > 1e-12
    else:
        assert lam2 <= 1e-9


@given(random_graph())
@settings(max_examples=50, deadline=None)
def test_gamma_below_one_when_connected(topo):
    if topo.m > 0 and topo.is_connected:
        assert gamma(topo) < 1.0 - 1e-12


@given(random_graph())
@settings(max_examples=50, deadline=None)
def test_lambda2_at_most_n_over_n_minus_1_min_degree_bound(topo):
    """Fiedler: lambda_2 <= n/(n-1) * min degree."""
    if topo.n >= 2:
        assert lambda_2(topo) <= topo.n / (topo.n - 1) * topo.min_degree + 1e-9


@given(random_graph(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_luby_matching_valid_on_any_graph(topo, seed):
    rng = np.random.default_rng(seed)
    m = luby_matching(topo, rng)
    assert is_matching(topo, m)


@given(random_graph(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_two_stage_matching_valid_on_any_graph(topo, seed):
    rng = np.random.default_rng(seed)
    m = two_stage_matching(topo, rng)
    assert is_matching(topo, m)


@given(random_graph(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_relabel_preserves_spectrum(topo, seed):
    perm = np.random.default_rng(seed).permutation(topo.n)
    re = topo.relabeled(perm)
    assert np.allclose(laplacian_eigenvalues(topo), laplacian_eigenvalues(re), atol=1e-8)


@given(st.integers(min_value=3, max_value=40))
@settings(max_examples=30, deadline=None)
def test_cycle_closed_form_any_size(n):
    from repro.graphs.spectral import lambda2_cycle

    assert lambda_2(g.cycle(n)) == lambda2_cycle(n) or abs(
        lambda_2(g.cycle(n)) - lambda2_cycle(n)
    ) < 1e-9


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_partner_links_structure(n, seed):
    from repro.core.random_partner import link_degrees, sample_partner_links

    rng = np.random.default_rng(seed)
    links = sample_partner_links(n, rng)
    # canonical, no self-loops, every node covered
    assert (links[:, 0] < links[:, 1]).all()
    deg = link_degrees(n, links)
    assert (deg >= 1).all()
    assert n / 2 <= links.shape[0] <= n
