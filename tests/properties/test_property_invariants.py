"""Property-based tests (hypothesis) for the core invariants.

These are the invariants the paper's analysis rests on; each strategy
draws arbitrary load vectors (and where relevant arbitrary graphs) so the
checks cover states no hand-written example would:

- exact load conservation (continuous to fp tolerance, discrete exactly);
- the potential never increases under any scheme's round;
- Lemma 1 per-activation bounds on arbitrary states;
- Lemma 10's identity for arbitrary real vectors;
- node-relabeling equivariance (no hidden node-order bias);
- discrete flows are always integral and respect the damping cap.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.diffusion import (
    diffusion_flows,
    diffusion_round_continuous,
    diffusion_round_discrete,
)
from repro.core.potential import (
    pairwise_square_sum,
    pairwise_square_sum_naive,
    potential,
)
from repro.core.random_partner import partner_round_continuous, partner_round_discrete
from repro.core.sequential import sequentialize_round
from repro.graphs import generators as g

# -- strategies ----------------------------------------------------------

GRAPHS = {
    "cycle12": g.cycle(12),
    "torus4x4": g.torus_2d(4, 4),
    "cube3": g.hypercube(3),
    "path7": g.path(7),
    "star9": g.star(9),
    "petersen": g.petersen(),
}

graph_st = st.sampled_from(sorted(GRAPHS))


def float_loads(n: int):
    return arrays(
        np.float64,
        (n,),
        elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    )


def int_loads(n: int):
    return arrays(np.int64, (n,), elements=st.integers(min_value=0, max_value=10**9))


# -- Lemma 10 -------------------------------------------------------------


@given(
    arrays(
        np.float64,
        st.integers(min_value=1, max_value=40),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    )
)
@settings(max_examples=100, deadline=None)
def test_lemma10_identity_any_vector(v):
    closed = pairwise_square_sum(v)
    naive = pairwise_square_sum_naive(v)
    scale = max(abs(closed), abs(naive), 1.0)
    assert abs(closed - naive) <= 1e-9 * scale


# -- conservation -----------------------------------------------------------


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_continuous_round_conserves(name, data):
    topo = GRAPHS[name]
    loads = data.draw(float_loads(topo.n))
    out = diffusion_round_continuous(loads, topo)
    assert abs(out.sum() - loads.sum()) <= 1e-6 * max(loads.sum(), 1.0)


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_discrete_round_conserves_exactly(name, data):
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    out = diffusion_round_discrete(loads, topo)
    assert out.sum() == loads.sum()
    assert out.dtype == np.int64


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=2**31 - 1), st.data())
@settings(max_examples=50, deadline=None)
def test_partner_round_conserves(n, seed, data):
    loads = data.draw(int_loads(n))
    rng = np.random.default_rng(seed)
    out = partner_round_discrete(loads, rng)
    assert out.sum() == loads.sum()


# -- monotone potential ------------------------------------------------------


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_potential_monotone_continuous(name, data):
    topo = GRAPHS[name]
    loads = data.draw(float_loads(topo.n))
    out = diffusion_round_continuous(loads, topo)
    assert potential(out) <= potential(loads) * (1 + 1e-9) + 1e-6


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_potential_monotone_discrete(name, data):
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    out = diffusion_round_discrete(loads, topo)
    assert potential(out) <= potential(loads) * (1 + 1e-12) + 1e-6


@given(st.integers(min_value=2, max_value=48), st.integers(min_value=0, max_value=2**31 - 1), st.data())
@settings(max_examples=50, deadline=None)
def test_potential_monotone_partner_continuous(n, seed, data):
    loads = data.draw(float_loads(n))
    rng = np.random.default_rng(seed)
    out = partner_round_continuous(loads, rng)
    assert potential(out) <= potential(loads) * (1 + 1e-9) + 1e-6


# -- Lemma 1 on arbitrary states ----------------------------------------------


@given(graph_st, st.data())
@settings(max_examples=30, deadline=None)
def test_lemma1_bounds_hold_any_state(name, data):
    topo = GRAPHS[name]
    loads = data.draw(float_loads(topo.n))
    report = sequentialize_round(loads, topo)
    assert report.lemma1_violations == []


@given(graph_st, st.data())
@settings(max_examples=30, deadline=None)
def test_lemma1_bounds_hold_discrete(name, data):
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    report = sequentialize_round(loads, topo, discrete=True)
    assert report.lemma1_violations == []


# -- relabeling equivariance -----------------------------------------------


@given(graph_st, st.integers(min_value=0, max_value=2**31 - 1), st.data())
@settings(max_examples=30, deadline=None)
def test_relabeling_equivariance(name, seed, data):
    """balance(relabel(G), relabel(L)) == relabel(balance(G, L))."""
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    perm = np.random.default_rng(seed).permutation(topo.n)
    relabeled_topo = topo.relabeled(perm)
    permuted_loads = np.empty_like(loads)
    permuted_loads[perm] = loads  # node i becomes perm[i]
    out_direct = diffusion_round_discrete(loads, topo)
    out_perm = diffusion_round_discrete(permuted_loads, relabeled_topo)
    expected = np.empty_like(out_direct)
    expected[perm] = out_direct
    assert np.array_equal(out_perm, expected)


# -- flow caps ---------------------------------------------------------------


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_discrete_flows_respect_damping_cap(name, data):
    """|flow_e| <= |diff_e| / (4 max(d_u, d_v)) by construction."""
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    flows = diffusion_flows(loads, topo, discrete=True)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    diff = np.abs(loads[u].astype(np.float64) - loads[v].astype(np.float64))
    cap = diff / (4 * np.maximum(topo.degrees[u], topo.degrees[v]))
    assert (np.abs(flows) <= cap + 1e-9).all()


@given(graph_st, st.data())
@settings(max_examples=50, deadline=None)
def test_nonnegativity_preserved(name, data):
    """Damped transfers can never drive a node negative."""
    topo = GRAPHS[name]
    loads = data.draw(int_loads(topo.n))
    out = diffusion_round_discrete(loads, topo)
    assert (out >= 0).all()
