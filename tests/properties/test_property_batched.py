"""Property tests: batched kernels are bit-for-bit equal to serial runs.

The batched execution stack (replica-major ``(B, n)`` kernels, node-major
ensemble engine) promises *exact* equality with ``B`` independent serial
runs driven by the same spawned seeds — not closeness, equality.  These
tests pin that contract for every batchable scheme, continuous and
discrete, including per-replica conservation.  Derived statistics
(potentials) are allowed to differ only at float-associativity level.
"""

import numpy as np
import pytest

from repro.baselines.first_order import (
    FirstOrderBalancer,
    fos_flows,
    fos_round_continuous,
    fos_round_discrete_floor,
    fos_round_discrete_randomized,
)
from repro.baselines.dimension_exchange import DimensionExchangeBalancer
from repro.baselines.ops import OptimalPolynomialBalancer
from repro.baselines.second_order import SecondOrderBalancer
from repro.core.diffusion import (
    DiffusionBalancer,
    apply_edge_flows,
    diffusion_flows,
    diffusion_round_continuous,
    diffusion_round_discrete,
)
from repro.core.random_partner import (
    RandomPartnerBalancer,
    partner_round_continuous,
    partner_round_discrete,
)
from repro.extensions.asynchronous import AsyncDiffusionBalancer
from repro.extensions.heterogeneous import HeterogeneousDiffusionBalancer, weighted_flows, weighted_round
from repro.graphs import generators as g
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.stopping import MaxRounds

B = 5
ROUNDS = 12


def _float_batch(n: int, B: int, seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, 1000, (B, n))


def _int_batch(n: int, B: int, seed: int = 4) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 10_000, (B, n)).astype(np.int64)


# ----------------------------------------------------------------------
# Replica-major (B, n) kernel forms vs per-row serial calls
# ----------------------------------------------------------------------
class TestBatchedKernelForms:
    def test_diffusion_flows_continuous(self, torus):
        batch = _float_batch(torus.n, B)
        got = diffusion_flows(batch, torus)
        want = np.stack([diffusion_flows(batch[b], torus) for b in range(B)])
        assert np.array_equal(got, want)

    def test_diffusion_flows_discrete(self, torus):
        batch = _int_batch(torus.n, B)
        got = diffusion_flows(batch, torus, discrete=True)
        assert got.dtype == np.int64
        want = np.stack([diffusion_flows(batch[b], torus, discrete=True) for b in range(B)])
        assert np.array_equal(got, want)

    def test_apply_edge_flows_batched(self, torus):
        batch = _float_batch(torus.n, B)
        flows = diffusion_flows(batch, torus)
        got = apply_edge_flows(batch, torus, flows)
        want = np.stack([apply_edge_flows(batch[b], torus, flows[b]) for b in range(B)])
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("round_fn,maker", [
        (diffusion_round_continuous, _float_batch),
        (diffusion_round_discrete, _int_batch),
    ])
    def test_diffusion_rounds(self, any_topology, round_fn, maker):
        batch = maker(any_topology.n, B)
        got = round_fn(batch, any_topology)
        want = np.stack([round_fn(batch[b], any_topology) for b in range(B)])
        assert np.array_equal(got, want)

    def test_fos_flows_and_rounds(self, torus):
        batch = _float_batch(torus.n, B)
        assert np.array_equal(
            fos_flows(batch, torus), np.stack([fos_flows(batch[b], torus) for b in range(B)])
        )
        assert np.array_equal(
            fos_round_continuous(batch, torus),
            np.stack([fos_round_continuous(batch[b], torus) for b in range(B)]),
        )
        ints = _int_batch(torus.n, B)
        assert np.array_equal(
            fos_round_discrete_floor(ints, torus),
            np.stack([fos_round_discrete_floor(ints[b], torus) for b in range(B)]),
        )

    def test_fos_randomized_matches_serial_streams(self, torus):
        ints = _int_batch(torus.n, B)
        got = fos_round_discrete_randomized(ints, torus, spawn_rngs(9, B))
        want = np.stack(
            [fos_round_discrete_randomized(ints[b], torus, spawn_rngs(9, B)[b]) for b in range(B)]
        )
        assert np.array_equal(got, want)

    def test_partner_rounds_match_serial_streams(self):
        n = 40
        floats = _float_batch(n, B)
        got = partner_round_continuous(floats, spawn_rngs(21, B))
        want = np.stack(
            [partner_round_continuous(floats[b], spawn_rngs(21, B)[b]) for b in range(B)]
        )
        assert np.array_equal(got, want)
        ints = _int_batch(n, B)
        got_d = partner_round_discrete(ints, spawn_rngs(22, B))
        want_d = np.stack(
            [partner_round_discrete(ints[b], spawn_rngs(22, B)[b]) for b in range(B)]
        )
        assert np.array_equal(got_d, want_d)

    def test_weighted_flows_and_round_batched(self, torus):
        speeds = np.random.default_rng(5).uniform(0.5, 4.0, torus.n)
        batch = _float_batch(torus.n, B)
        assert np.array_equal(
            weighted_flows(batch, speeds, torus),
            np.stack([weighted_flows(batch[b], speeds, torus) for b in range(B)]),
        )
        assert np.array_equal(
            weighted_round(batch, speeds, torus),
            np.stack([weighted_round(batch[b], speeds, torus) for b in range(B)]),
        )


# ----------------------------------------------------------------------
# EnsembleSimulator vs B independent Simulator runs (same spawned seeds)
# ----------------------------------------------------------------------
def _balancer_cases(topo):
    speeds = np.random.default_rng(6).uniform(0.5, 4.0, topo.n)
    return [
        ("diffusion-continuous", lambda: DiffusionBalancer(topo), False),
        ("diffusion-discrete", lambda: DiffusionBalancer(topo, mode="discrete"), True),
        ("fos-continuous", lambda: FirstOrderBalancer(topo), False),
        ("fos-floor", lambda: FirstOrderBalancer(topo, variant="floor"), True),
        ("fos-randomized", lambda: FirstOrderBalancer(topo, variant="randomized"), True),
        ("sos", lambda: SecondOrderBalancer(topo, beta=1.3), False),
        ("random-partner", lambda: RandomPartnerBalancer(), False),
        ("random-partner-discrete", lambda: RandomPartnerBalancer(mode="discrete"), True),
        ("hetero-continuous", lambda: HeterogeneousDiffusionBalancer(topo, speeds), False),
        ("hetero-discrete", lambda: HeterogeneousDiffusionBalancer(topo, speeds, mode="discrete"), True),
        ("de-luby", lambda: DimensionExchangeBalancer(topo, partner_rule="luby"), False),
        ("de-luby-discrete", lambda: DimensionExchangeBalancer(topo, mode="discrete", partner_rule="luby"), True),
        ("de-two-stage", lambda: DimensionExchangeBalancer(topo, partner_rule="two-stage"), False),
        ("de-two-stage-discrete", lambda: DimensionExchangeBalancer(topo, mode="discrete", partner_rule="two-stage"), True),
        ("de-round-robin", lambda: DimensionExchangeBalancer(topo, partner_rule="round-robin"), False),
        ("ops", lambda: OptimalPolynomialBalancer(topo), False),
        ("async-random", lambda: AsyncDiffusionBalancer(topo, schedule="random", ticks_per_step=11), False),
        ("async-random-discrete", lambda: AsyncDiffusionBalancer(topo, mode="discrete", schedule="random", ticks_per_step=11), True),
        ("async-round-robin", lambda: AsyncDiffusionBalancer(topo, schedule="round-robin", ticks_per_step=11), False),
    ]


class TestEnsembleBitForBit:
    @pytest.fixture(scope="class")
    def topo(self):
        return g.torus_2d(5, 5)

    def test_every_batchable_scheme(self, topo):
        seed = 1234
        for label, make, discrete in _balancer_cases(topo):
            loads = (
                _int_batch(topo.n, B, seed=1)[0] if discrete else _float_batch(topo.n, B, seed=2)[0]
            )
            ens = EnsembleSimulator(make(), stopping=[MaxRounds(ROUNDS)], keep_snapshots=True)
            trace = ens.run(loads, seed=seed, replicas=B)
            rngs = spawn_rngs(seed, B)
            for b in range(B):
                serial = Simulator(make(), stopping=[MaxRounds(ROUNDS)], keep_snapshots=True).run(
                    loads, rngs[b]
                )
                # Bit-for-bit: every recorded load vector, every round.
                for t, snap in enumerate(serial.snapshots):
                    assert np.array_equal(snap, trace.snapshots[t][b]), (
                        f"{label}: replica {b} diverged at round {t}"
                    )
                assert np.array_equal(serial.snapshots[-1], trace.final_loads[b]), label
                # Statistics agree up to float associativity.
                assert np.allclose(
                    serial.potential_array,
                    [row[b] for row in trace._potentials],
                    rtol=1e-9,
                    atol=1e-6,
                ), label

    def test_async_high_degree_segments(self):
        """Star hub (degree 31, beyond NumPy's small-sum threshold) forces
        the per-segment float ``np.sum`` path of the batched async tick;
        it must stay bit-for-bit with the serial tick loop."""
        topo = g.star(32)
        loads = _float_batch(topo.n, B, seed=17)[0]
        make = lambda: AsyncDiffusionBalancer(topo, schedule="random", ticks_per_step=9)
        ens = EnsembleSimulator(make(), stopping=[MaxRounds(8)], keep_snapshots=True)
        trace = ens.run(loads, seed=77, replicas=B)
        rngs = spawn_rngs(77, B)
        for b in range(B):
            serial = Simulator(make(), stopping=[MaxRounds(8)], keep_snapshots=True).run(
                loads, rngs[b]
            )
            for t, snap in enumerate(serial.snapshots):
                assert np.array_equal(snap, trace.snapshots[t][b]), f"replica {b}, round {t}"

    def test_conservation_per_replica(self, topo):
        loads = _int_batch(topo.n, B, seed=8)
        ens = EnsembleSimulator(DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(25)])
        trace = ens.run(loads, seed=0)
        sums = trace.load_sums_matrix
        assert np.array_equal(sums, np.broadcast_to(sums[0], sums.shape))
        assert trace.conservation_error() == 0.0

    def test_per_replica_initial_states(self, topo):
        """Distinct (B, n) initial loads reproduce distinct serial runs."""
        batch = _float_batch(topo.n, B, seed=12)
        ens = EnsembleSimulator(DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)])
        trace = ens.run(batch, seed=3)
        rngs = spawn_rngs(3, B)
        for b in range(B):
            serial = Simulator(
                DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)], keep_snapshots=True
            ).run(batch[b], rngs[b])
            assert np.array_equal(serial.snapshots[-1], trace.final_loads[b])


class TestBackendParity:
    """Kernel backends are bit-for-bit interchangeable at trajectory level.

    The numpy reference is the oracle; the scipy backend, the numba
    backend (the real JIT when installed, its pure-Python kernel shims
    otherwise — same algorithms, same arithmetic) and the forced-no-scipy
    / forced-no-numba degradations must all reproduce identical load
    trajectories on the serial, batched and sharded execution paths.
    """

    ROUNDS = 10

    def _operator_schemes(self, topo):
        """Every scheme whose rounds go through an EdgeOperator."""
        speeds = np.random.default_rng(6).uniform(0.5, 4.0, topo.n)
        return [
            ("diffusion-continuous", lambda be: DiffusionBalancer(topo, backend=be), False),
            ("diffusion-discrete",
             lambda be: DiffusionBalancer(topo, mode="discrete", backend=be), True),
            ("fos-continuous", lambda be: FirstOrderBalancer(topo, backend=be), False),
            ("fos-floor", lambda be: FirstOrderBalancer(topo, variant="floor", backend=be), True),
            ("fos-randomized",
             lambda be: FirstOrderBalancer(topo, variant="randomized", backend=be), True),
            ("sos", lambda be: SecondOrderBalancer(topo, beta=1.3, backend=be), False),
            ("ops", lambda be: OptimalPolynomialBalancer(topo, backend=be), False),
            ("hetero-continuous",
             lambda be: HeterogeneousDiffusionBalancer(topo, speeds, backend=be), False),
            ("hetero-discrete",
             lambda be: HeterogeneousDiffusionBalancer(
                 topo, speeds, mode="discrete", backend=be), True),
        ]

    def _forced_backends(self, monkeypatch):
        """Backends to test against the numpy reference on this host.

        numba is always included: when the real JIT is absent its
        pure-Python kernel shims run instead (identical algorithms), so
        the fused-round logic is exercised everywhere while CI's numba
        leg covers the compiled path.
        """
        import repro.core.backends as backends_mod

        names = ["scipy"] if backends_mod.HAVE_SCIPY else []
        if not backends_mod.NumbaBackend.available():
            monkeypatch.setattr(
                backends_mod.NumbaBackend, "available", classmethod(lambda cls: True)
            )
        names.append("numba")
        return names

    def _snapshots(self, make, backend, loads, seed):
        ens = EnsembleSimulator(
            make(backend),
            stopping=[MaxRounds(self.ROUNDS)],
            keep_snapshots=True,
            serial_singleton=False,
        )
        trace = ens.run(loads, seed=seed, replicas=B)
        return np.asarray(trace.snapshots)

    def test_trajectories_bit_identical_across_backends(self, monkeypatch):
        topo = g.torus_2d(5, 5)
        backends = self._forced_backends(monkeypatch)
        for label, make, discrete in self._operator_schemes(topo):
            loads = (
                _int_batch(topo.n, B, seed=1)[0] if discrete else _float_batch(topo.n, B, seed=2)[0]
            )
            ref = self._snapshots(make, "numpy", loads, seed=31)
            for name in backends:
                got = self._snapshots(make, name, loads, seed=31)
                assert np.array_equal(got, ref), f"{label}: backend {name} diverged"
            # Serial engine path on each backend equals the reference too.
            rngs = spawn_rngs(31, B)
            serial = Simulator(
                make(backends[-1]), stopping=[MaxRounds(self.ROUNDS)], keep_snapshots=True
            ).run(loads, rngs[0])
            assert np.array_equal(np.asarray(serial.snapshots), ref[:, 0, :]), label

    def test_sharded_trajectories_identical_across_available_backends(self):
        """The sharded path ships the backend with the pickled balancer;
        every genuinely-available backend must agree bit-for-bit (the
        simulated numba shim cannot cross the process boundary, so the
        compiled sharded path is covered on numba-equipped CI)."""
        from repro.core.backends import available_backends
        from repro.simulation.sharding import run_sharded_ensemble

        topo = g.torus_2d(4, 4)
        for mode, loads in (
            ("continuous", _float_batch(topo.n, B, seed=21)),
            ("discrete", _int_batch(topo.n, B, seed=22)),
        ):
            ref = None
            for name in available_backends():
                trace = run_sharded_ensemble(
                    DiffusionBalancer(topo, mode=mode),
                    loads,
                    seed=5,
                    workers=2,
                    stopping=[MaxRounds(8)],
                    keep_snapshots=True,
                    backend=name,
                )
                snaps = np.asarray(trace.snapshots)
                if ref is None:
                    ref = snaps
                else:
                    assert np.array_equal(snaps, ref), f"{mode}: backend {name} diverged"

    def test_forced_no_scipy_resolves_to_reference(self, monkeypatch):
        """With scipy (and numba) unavailable, auto execution degrades to
        the numpy backend and still reproduces the scipy trajectories."""
        import repro.core.backends as backends_mod

        topo = g.torus_2d(4, 4)
        loads = _int_batch(topo.n, B, seed=14)[0]
        want = self._snapshots(lambda be: DiffusionBalancer(topo, mode="discrete"), None,
                               loads, seed=3)
        monkeypatch.setattr(backends_mod.ScipyBackend, "available", classmethod(lambda cls: False))
        monkeypatch.setattr(backends_mod.NumbaBackend, "available", classmethod(lambda cls: False))
        fresh = g.torus_2d(4, 4)  # fresh instance: no cached operators
        assert backends_mod.resolve_backend(None) == "numpy"
        got = self._snapshots(lambda be: DiffusionBalancer(fresh, mode="discrete"), None,
                              loads, seed=3)
        assert np.array_equal(got, want)

    def test_forced_no_numba_resolves_to_scipy(self, monkeypatch):
        import repro.core.backends as backends_mod

        if not backends_mod.HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        monkeypatch.setattr(backends_mod.NumbaBackend, "available", classmethod(lambda cls: False))
        assert backends_mod.resolve_backend("auto") == "scipy"

    def test_scratch_buffers_not_shared_across_backends(self, monkeypatch):
        """Backends must never alias each other's scratch space — a shared
        buffer would let one backend's staged round corrupt another's."""
        from repro.core.operators import edge_operator

        topo = g.torus_2d(4, 4)
        ops = [edge_operator(topo, name) for name in self._forced_backends(monkeypatch)]
        ops.append(edge_operator(topo, "numpy"))
        bufs = [op.scratch("disc-diff", (topo.m, B), np.int64) for op in ops]
        for i in range(len(bufs)):
            for j in range(i + 1, len(bufs)):
                assert not np.shares_memory(bufs[i], bufs[j])


# ----------------------------------------------------------------------
# Transport parity (the distributed runtime's seam)
# ----------------------------------------------------------------------
class TestTransportParity:
    """Transports are bit-for-bit interchangeable at trajectory level.

    The distributed runtime's contract extends the backend contract one
    layer out: the channel a halo slab or shard payload travels over
    (mp-pipe / tcp locally, tcp across hosts) changes bytes in flight,
    never arithmetic.  Both parallel axes must produce identical
    trajectories on every transport — and identical *payload byte*
    accounting, since the counters meter pickled frames, not wires.
    """

    ROUNDS = 10

    def test_partitioned_trajectories_identical_across_transports(self):
        from repro.simulation.partitioned import PROCESS_TRANSPORTS, PartitionedSimulator

        topo = g.torus_2d(5, 5)
        for mode, loads in (
            ("continuous", _float_batch(topo.n, B, seed=41)[0]),
            ("discrete", _int_batch(topo.n, B, seed=42)[0]),
        ):
            ref = None
            ref_bytes = None
            for transport in PROCESS_TRANSPORTS:
                psim = PartitionedSimulator(
                    DiffusionBalancer(topo, mode=mode), partitions=3, strategy="bfs",
                    stopping=[MaxRounds(self.ROUNDS)], keep_snapshots=True,
                    mode="process", transport=transport,
                )
                trace = psim.run(loads.copy())
                snaps = np.asarray(trace.snapshots)
                stats = (psim.halo_stats["halo_values"], psim.halo_stats["halo_bytes"])
                if ref is None:
                    ref, ref_bytes = snaps, stats
                else:
                    assert np.array_equal(snaps, ref), f"{mode}: {transport} diverged"
                    assert stats == ref_bytes, f"{mode}: {transport} accounting diverged"

    def test_channel_byte_totals_identical_across_all_channels(self):
        """Every channel — mpi included when importable — books the same
        logical frame bytes for the same payloads: the counters meter the
        transport-independent encoding, not the wire."""
        import threading

        from repro.distributed.transport import (
            available_transports,
            encode_frame,
            make_pair,
        )

        rng = np.random.default_rng(46)
        payloads = [
            ("run", 12, None),
            {"slab": rng.standard_normal((160, 820))},  # ~1 MB out-of-band
            rng.integers(0, 9, 300),
        ]
        expected = sum(encode_frame(p).nbytes for p in payloads)
        totals = {}
        for transport in available_transports():
            a, b = make_pair(transport)
            reader = threading.Thread(
                target=lambda: [b.recv(timeout=30.0) for _ in payloads]
            )
            reader.start()
            for p in payloads:
                a.send(p)
            reader.join(timeout=30)
            assert not reader.is_alive(), f"{transport}: receiver wedged"
            totals[transport] = (a.bytes_sent, b.bytes_received)
            a.close(), b.close()
        for transport, (sent, received) in totals.items():
            assert sent == received == expected, (
                f"{transport}: booked {sent}/{received} B, expected {expected}"
            )

    def test_forced_chunking_preserves_trajectories(self, monkeypatch):
        """A tiny MAX_CHUNK_BYTES reshapes frames into many wire chunks;
        trajectories and byte accounting must not notice (forked workers
        inherit the patched value)."""
        import repro.distributed.transport as transport
        from repro.simulation.partitioned import PROCESS_TRANSPORTS, PartitionedSimulator

        topo = g.torus_2d(5, 5)
        loads = _float_batch(topo.n, B, seed=45)[0]

        def run(wire):
            psim = PartitionedSimulator(
                DiffusionBalancer(topo, mode="continuous"), partitions=3,
                strategy="bfs", stopping=[MaxRounds(self.ROUNDS)],
                keep_snapshots=True, mode="process", transport=wire,
            )
            trace = psim.run(loads.copy())
            return np.asarray(trace.snapshots), psim.halo_stats["halo_bytes"]

        ref_snaps, ref_bytes = run("mp-pipe")  # unchunked reference
        monkeypatch.setattr(transport, "MAX_CHUNK_BYTES", 512)
        for wire in PROCESS_TRANSPORTS:
            snaps, nbytes = run(wire)
            assert np.array_equal(snaps, ref_snaps), f"{wire} diverged under chunking"
            assert nbytes == ref_bytes, f"{wire} accounting changed under chunking"

    def test_sharded_trajectories_identical_across_transports(self):
        from repro.simulation.sharding import SHARD_TRANSPORTS, run_sharded_ensemble

        topo = g.torus_2d(4, 4)
        for mode, loads in (
            ("continuous", _float_batch(topo.n, B, seed=43)),
            ("discrete", _int_batch(topo.n, B, seed=44)),
        ):
            ref = None
            for transport in SHARD_TRANSPORTS:
                trace = run_sharded_ensemble(
                    DiffusionBalancer(topo, mode=mode), loads, seed=5, workers=2,
                    stopping=[MaxRounds(8)], keep_snapshots=True, transport=transport,
                )
                snaps = np.asarray(trace.snapshots)
                if ref is None:
                    ref = snaps
                else:
                    assert np.array_equal(snaps, ref), f"{mode}: {transport} diverged"
