"""Failure-injection tests: malformed inputs and misbehaving components.

A library is judged by how it fails.  These tests pin down that every
bad input is rejected with a clear error at the API boundary — not
propagated into a silently-wrong experiment.
"""

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.core.protocols import Balancer
from repro.core.random_partner import RandomPartnerBalancer
from repro.graphs import generators as g
from repro.simulation.engine import Simulator
from repro.simulation.stopping import MaxRounds


class TestMalformedLoads:
    @pytest.fixture
    def bal(self, torus):
        return DiffusionBalancer(torus, mode="continuous")

    def test_nan_rejected(self, bal, torus):
        loads = np.ones(torus.n)
        loads[3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            bal.step(loads, np.random.default_rng(0))

    def test_inf_rejected(self, bal, torus):
        loads = np.ones(torus.n)
        loads[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            bal.step(loads, np.random.default_rng(0))

    def test_negative_rejected(self, bal, torus):
        loads = np.ones(torus.n)
        loads[-1] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            bal.step(loads, np.random.default_rng(0))

    def test_2d_rejected(self, bal, torus):
        with pytest.raises(ValueError, match="1-D"):
            bal.step(np.ones((torus.n, 1)), np.random.default_rng(0))

    def test_wrong_size_rejected(self, bal, torus):
        with pytest.raises(ValueError):
            bal.step(np.ones(torus.n - 1), np.random.default_rng(0))

    def test_fractional_for_discrete_rejected(self, torus):
        bal = DiffusionBalancer(torus, mode="discrete")
        with pytest.raises(ValueError, match="integer"):
            bal.step(np.full(torus.n, 0.5), np.random.default_rng(0))


class TestExtremeValues:
    def test_huge_int_loads_no_overflow(self, torus):
        """Transfers near int64 territory must not wrap."""
        bal = DiffusionBalancer(torus, mode="discrete")
        loads = np.zeros(torus.n, dtype=np.int64)
        loads[0] = 2**52  # large but transfer arithmetic stays in range
        out = bal.step(loads, np.random.default_rng(0))
        assert out.sum() == loads.sum()
        assert (out >= 0).all()

    def test_zero_total_load(self, torus):
        bal = DiffusionBalancer(torus, mode="discrete")
        out = bal.step(np.zeros(torus.n, dtype=np.int64), np.random.default_rng(0))
        assert (out == 0).all()

    def test_single_token(self, torus):
        """One token in the whole system never moves (floor) and never
        duplicates."""
        bal = DiffusionBalancer(torus, mode="discrete")
        loads = np.zeros(torus.n, dtype=np.int64)
        loads[5] = 1
        out = bal.step(loads, np.random.default_rng(0))
        assert out.sum() == 1

    def test_two_node_graph_minimal(self):
        from repro.graphs.topology import Topology

        t = Topology(2, [(0, 1)])
        bal = DiffusionBalancer(t, mode="discrete")
        out = bal.step(np.asarray([1, 0], dtype=np.int64), np.random.default_rng(0))
        assert out.tolist() == [1, 0]  # floor(1/4) = 0: stable as expected

    def test_partner_balancer_two_nodes(self):
        bal = RandomPartnerBalancer()
        out = bal.step(np.asarray([8.0, 0.0]), np.random.default_rng(0))
        assert out.sum() == pytest.approx(8.0)


class _SizeChangingBalancer(Balancer):
    name = "size-changer"

    def step(self, loads, rng):
        return np.ones(loads.size + 1)


class _NaNBalancer(Balancer):
    name = "nan-maker"

    def step(self, loads, rng):
        out = loads.copy()
        out[0] = np.nan
        return out


class TestMisbehavingBalancers:
    def test_nan_output_caught_by_conservation_audit(self):
        sim = Simulator(_NaNBalancer(), stopping=[MaxRounds(3)])
        with pytest.raises(AssertionError, match="leaked"):
            sim.run(np.asarray([1.0, 2.0]), 0)

    def test_size_change_propagates_loudly(self):
        # A size change must fail loudly (the trace's movement accounting
        # rejects the shape mismatch) rather than silently reshaping the
        # experiment.
        sim = Simulator(_SizeChangingBalancer(), stopping=[MaxRounds(5)], check_conservation=False)
        with pytest.raises(ValueError):
            sim.run(np.asarray([1.0, 2.0]), 0)


class TestDynamicEdgeCases:
    def test_always_disconnected_dynamics_makes_no_progress(self):
        from repro.graphs.dynamic import AdversarialDynamics
        from repro.graphs.topology import Topology
        from repro.simulation.engine import run_balancer

        base = g.torus_2d(4, 4)
        empty = Topology(base.n, [])
        dyn = AdversarialDynamics([], empty)  # empty forever
        bal = DiffusionBalancer(dyn, mode="continuous")
        loads = np.zeros(base.n)
        loads[0] = 100.0
        trace = run_balancer(bal, loads, rounds=20)
        assert trace.last_potential == pytest.approx(trace.initial_potential)

    def test_average_gap_zero_for_empty_dynamics(self):
        from repro.graphs.dynamic import AdversarialDynamics
        from repro.graphs.topology import Topology

        empty = Topology(8, [])
        dyn = AdversarialDynamics([], empty)
        assert dyn.average_gap(10) == 0.0
        assert dyn.worst_threshold_term(10) == 0.0
