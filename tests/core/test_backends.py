"""Unit tests for the pluggable kernel-backend layer.

The backend contract is *bit-for-bit interchangeability*: every backend
must produce identical results for every operator primitive, so backend
choice is purely a speed knob.  These tests pin that contract at the
primitive level (the property suite pins it at the trajectory level),
plus the selection policy, the int32 index downcast and the
plumbing through engines, sweep and Monte-Carlo.
"""

import numpy as np
import pytest

import repro.core.backends as B
from repro.core.backends import (
    NumbaBackend,
    PlainCSR,
    available_backends,
    backend_summaries,
    get_backend,
    index_dtype,
    resolve_backend,
)
from repro.core.operators import EdgeOperator, edge_operator, truncated_half
from repro.graphs import generators as g


def forced_numba_operator(topo):
    """An operator running the numba backend's *algorithms*.

    Without numba installed the kernels degrade to pure Python (the
    ``@njit`` shim), which is far too slow for production but exercises
    exactly the fused-kernel logic on small graphs; with numba installed
    this is the real JIT backend.
    """
    return EdgeOperator(topo, NumbaBackend())


BACKEND_OPS = [
    ("numpy", lambda t: edge_operator(t, "numpy")),
    pytest.param(
        "scipy",
        lambda t: edge_operator(t, "scipy"),
        marks=pytest.mark.skipif(not B.HAVE_SCIPY, reason="scipy unavailable"),
    ),
    ("numba", forced_numba_operator),
]


class TestIndexDtype:
    def test_small_values_downcast(self):
        assert index_dtype(0) == np.int32
        assert index_dtype(4096, 8192) == np.int32

    def test_boundary(self):
        """2**31 - 1 is the last representable int32 index; one past
        overflows and must stay int64."""
        assert index_dtype(2**31 - 1) == np.int32
        assert index_dtype(2**31) == np.int64
        assert index_dtype(5, 2**31) == np.int64

    def test_operator_arrays_are_int32_for_small_graphs(self, torus):
        op = edge_operator(torus)
        assert op.idx_dtype == np.int32
        A = op.incidence_csr()
        assert A.indptr.dtype == np.int32 and A.indices.dtype == np.int32
        M = op.round_csr()
        assert M.indptr.dtype == np.int32 and M.indices.dtype == np.int32
        indptr, indices, eids = op.adjacency()
        assert indptr.dtype == np.int32
        assert indices.dtype == np.int32
        assert eids.dtype == np.int32

    def test_scipy_views_keep_downcast_indices(self, torus):
        if not B.HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        assert edge_operator(torus).incidence().indices.dtype == np.int32
        assert edge_operator(torus).round_matrix().indices.dtype == np.int32


class TestSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_auto_prefers_fastest(self):
        names = available_backends()
        assert resolve_backend("auto") == names[0]
        if B.HAVE_SCIPY and not NumbaBackend.available():
            assert resolve_backend("auto") == "scipy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setattr(B.ScipyBackend, "available", classmethod(lambda cls: False))
        with pytest.raises(RuntimeError, match="not available"):
            resolve_backend("scipy")

    def test_auto_degrades_without_scipy_and_numba(self, monkeypatch):
        monkeypatch.setattr(B.ScipyBackend, "available", classmethod(lambda cls: False))
        monkeypatch.setattr(B.NumbaBackend, "available", classmethod(lambda cls: False))
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend(None) == "numpy"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None) == resolve_backend("auto")

    def test_summaries_cover_all_backends(self):
        rows = backend_summaries()
        assert {r["name"] for r in rows} == {"numpy", "scipy", "numba"}
        assert sum(r["default"] for r in rows) == 1
        for row in rows:
            assert isinstance(row["detail"], str) and row["detail"]

    def test_get_backend_is_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestOperatorCache:
    def test_default_backend_operator_cached(self, torus):
        assert edge_operator(torus) is edge_operator(torus)

    def test_distinct_backends_get_distinct_operators(self, torus):
        a = edge_operator(torus, "numpy")
        b = edge_operator(torus)
        if a.backend == b.backend:
            pytest.skip("only one backend available")
        assert a is not b

    def test_scratch_never_shared_across_backends(self, torus):
        ops = [edge_operator(torus, "numpy")]
        if B.HAVE_SCIPY:
            ops.append(edge_operator(torus, "scipy"))
        ops.append(forced_numba_operator(torus))
        bufs = [op.scratch("probe", (8, 3), np.float64) for op in ops]
        for i in range(len(bufs)):
            for j in range(i + 1, len(bufs)):
                assert bufs[i] is not bufs[j]
                assert not np.shares_memory(bufs[i], bufs[j])


class TestPrimitiveParity:
    """Every backend primitive equals the numpy reference, bit for bit."""

    @pytest.fixture(
        scope="class",
        params=["cycle:12", "torus:5x5", "star:32", "complete:16", "debruijn:5"],
        ids=lambda s: s,
    )
    def topo(self, request):
        return g.by_name(request.param)

    @pytest.mark.parametrize("name,make_op", BACKEND_OPS)
    def test_round_parity(self, topo, name, make_op):
        rng = np.random.default_rng(7)
        ref = edge_operator(topo, "numpy")
        op = make_op(topo)
        x = rng.uniform(0, 1000.0, topo.n)
        X = np.ascontiguousarray(rng.uniform(0, 1000.0, (topo.n, 5)))
        xi = rng.integers(0, 100_000, topo.n)
        Xi = np.ascontiguousarray(rng.integers(0, 100_000, (topo.n, 5)))
        assert np.array_equal(op.round_continuous(x), ref.round_continuous(x))
        assert np.array_equal(op.round_continuous(X), ref.round_continuous(X))
        assert np.array_equal(op.round_discrete(xi), ref.round_discrete(xi))
        assert np.array_equal(op.round_discrete(Xi), ref.round_discrete(Xi))
        for alpha in (0.01, 1.0 / (topo.max_degree + 1)):
            assert np.array_equal(op.fos_round(alpha, x), ref.fos_round(alpha, x))
            assert np.array_equal(op.fos_round(alpha, X), ref.fos_round(alpha, X))
        flows = ref.differences(x) / ref.denominators
        assert np.array_equal(op.apply_flows(x, flows), ref.apply_flows(x, flows))

    @pytest.mark.parametrize("name,make_op", BACKEND_OPS)
    def test_discrete_beyond_reciprocal_range(self, topo, name, make_op):
        """The int64 floor-division fallback path is also backend-exact."""
        from repro.core.operators import RECIP_DIV_LIMIT

        ref = edge_operator(topo, "numpy")
        op = make_op(topo)
        loads = np.zeros(topo.n, dtype=np.int64)
        loads[0] = RECIP_DIV_LIMIT * 8
        loads[-1] = 17
        assert np.array_equal(op.round_discrete(loads), ref.round_discrete(loads))
        batch = np.ascontiguousarray(np.stack([loads, loads[::-1].copy()], axis=1))
        assert np.array_equal(op.round_discrete(batch), ref.round_discrete(batch))

    def test_scipy_backend_matches_legacy_matrix_product(self, topo):
        """The scipy backend must preserve the pre-backend-seam semantics
        (``M @ loads``) exactly — the committed bench baseline depends on
        the numbers not moving."""
        if not B.HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        rng = np.random.default_rng(8)
        op = edge_operator(topo, "scipy")
        x = rng.uniform(0, 1000.0, topo.n)
        assert np.array_equal(op.round_continuous(x), op.round_matrix() @ x)

    def test_empty_graph_identity_on_all_backends(self):
        from repro.graphs.topology import Topology

        topo = Topology(3, [])
        loads = np.asarray([1.0, 2.0, 3.0])
        tokens = np.asarray([1, 2, 3], dtype=np.int64)
        for _, make_op in (("numpy", lambda t: edge_operator(t, "numpy")),
                           ("numba", forced_numba_operator)):
            op = make_op(topo)
            assert np.array_equal(op.round_continuous(loads), loads)
            assert np.array_equal(op.round_discrete(tokens), tokens)


class TestFosCSR:
    def test_data_matches_from_scratch_build(self, any_topology):
        """The pattern-shared per-alpha data fill must be bitwise the
        values of a full ``_laplacian_style`` rebuild."""
        op = edge_operator(any_topology, "numpy")
        for alpha in (0.3, 1.0 / (any_topology.max_degree + 1)):
            fast = op.fos_csr(alpha, cache=False)
            full = op._laplacian_style(np.full(any_topology.m, alpha, dtype=np.float64))
            assert np.array_equal(fast.indptr, full.indptr)
            assert np.array_equal(fast.indices, full.indices)
            assert np.array_equal(fast.data, full.data)

    def test_cache_flag(self, torus):
        op = edge_operator(torus, "numpy")
        a = op.fos_csr(0.125)
        assert op.fos_csr(0.125) is a
        b = op.fos_csr(0.126, cache=False)
        assert op.fos_csr(0.126, cache=False) is not b


class TestTruncatedHalf:
    def test_matches_sign_floor_halve(self):
        rng = np.random.default_rng(9)
        d = rng.integers(-(10**12), 10**12, 500)
        assert np.array_equal(truncated_half(d), np.sign(d) * (np.abs(d) // 2))

    def test_beyond_float_exact_range(self):
        d = np.asarray([2**60 + 1, -(2**60) - 1, 2**52, -(2**52), 3, -3], dtype=np.int64)
        assert np.array_equal(truncated_half(d), np.sign(d) * (np.abs(d) // 2))

    def test_out_buffer_and_empty(self):
        d = np.asarray([5, -5], dtype=np.int64)
        buf = np.empty_like(d)
        assert truncated_half(d, out=buf) is buf
        empty = np.empty(0, dtype=np.int64)
        assert truncated_half(empty).shape == (0,)


class TestEnginePassThrough:
    def test_simulator_sets_balancer_backend(self, torus):
        from repro.core.diffusion import DiffusionBalancer
        from repro.simulation.engine import Simulator

        bal = DiffusionBalancer(torus)
        Simulator(bal, backend="numpy")
        assert bal.backend == "numpy"

    def test_ensemble_sets_balancer_backend(self, torus):
        from repro.core.diffusion import DiffusionBalancer
        from repro.simulation.ensemble import EnsembleSimulator

        bal = DiffusionBalancer(torus)
        EnsembleSimulator(bal, backend="numpy")
        assert bal.backend == "numpy"

    def test_sharded_sets_balancer_backend(self, torus):
        from repro.core.diffusion import DiffusionBalancer
        from repro.simulation.sharding import run_sharded_ensemble
        from repro.simulation.stopping import MaxRounds

        bal = DiffusionBalancer(torus)
        loads = np.random.default_rng(1).uniform(0, 100, torus.n)
        trace = run_sharded_ensemble(
            bal, loads, replicas=2, workers=1, stopping=[MaxRounds(3)], backend="numpy"
        )
        assert bal.backend == "numpy"
        assert trace.replicas == 2

    def test_sweep_backend_kwarg(self):
        from repro.simulation.sweep import sweep

        table, cells = sweep(
            ["torus:4x4"], ["diffusion"], eps=0.01, max_rounds=200, backend="numpy"
        )
        assert cells and "torus:4x4" in table.to_text()

    def test_monte_carlo_forwards_backend_kwarg(self):
        from repro.simulation.montecarlo import monte_carlo

        result = monte_carlo(_backend_probe_trial, trials=3, backend="numpy")
        assert np.all(result.samples["value"] == 1.0)
        plain = monte_carlo(_backend_probe_trial, trials=3)
        assert np.all(plain.samples["value"] == 0.0)


def _backend_probe_trial(rng, backend=None):
    return 1.0 if backend == "numpy" else 0.0
