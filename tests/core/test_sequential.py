"""Unit tests for the sequentialization engine (the proof device)."""

import numpy as np
import pytest

from repro.core.diffusion import diffusion_round_continuous, diffusion_round_discrete
from repro.core.potential import potential
from repro.core.sequential import (
    concurrency_gap,
    edge_weights,
    greedy_sequential_round,
    sequentialize_round,
)
from repro.graphs import generators as g
from repro.graphs.topology import Topology


class TestEdgeWeights:
    def test_continuous_formula(self):
        t = Topology(2, [(0, 1)])
        w = edge_weights(np.asarray([10.0, 2.0]), t)
        assert w[0] == pytest.approx(8 / 4)

    def test_discrete_floors(self):
        t = Topology(2, [(0, 1)])
        w = edge_weights(np.asarray([9, 2], dtype=np.int64), t, discrete=True)
        assert w[0] == 1.0

    def test_weights_nonnegative(self, any_topology, rng):
        w = edge_weights(rng.uniform(0, 100, any_topology.n), any_topology)
        assert (w >= 0).all()


class TestDecomposition:
    def test_final_state_equals_concurrent_round(self, any_topology, rng):
        """The decomposition is an accounting identity: same endpoint."""
        loads = rng.uniform(0, 100, any_topology.n)
        report = sequentialize_round(loads, any_topology)
        concurrent = diffusion_round_continuous(loads, any_topology)
        assert np.allclose(report.final_loads, concurrent, atol=1e-9)

    def test_final_state_equals_concurrent_round_discrete(self, any_topology, rng):
        loads = rng.integers(0, 10_000, any_topology.n).astype(np.int64)
        report = sequentialize_round(loads, any_topology, discrete=True)
        concurrent = diffusion_round_discrete(loads, any_topology)
        assert np.allclose(report.final_loads, concurrent.astype(float), atol=1e-9)

    def test_drops_sum_to_total(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        report = sequentialize_round(loads, torus)
        assert sum(a.drop for a in report.activations) == pytest.approx(report.total_drop, rel=1e-9)

    def test_activations_sorted_by_weight(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        report = sequentialize_round(loads, torus)
        weights = [a.weight for a in report.activations]
        assert weights == sorted(weights)

    def test_lemma1_bound_holds_everywhere(self, any_topology, rng):
        for _ in range(5):
            loads = rng.uniform(0, 1000, any_topology.n)
            report = sequentialize_round(loads, any_topology)
            assert report.lemma1_violations == []

    def test_lemma1_bound_holds_discrete(self, any_topology, rng):
        for _ in range(5):
            loads = rng.integers(0, 10_000, any_topology.n).astype(np.int64)
            report = sequentialize_round(loads, any_topology, discrete=True)
            assert report.lemma1_violations == []

    def test_lemma2_aggregate(self, torus, rng):
        # Total drop >= sum of w_e * |diff_e| >= (1/4 delta) sum diff^2.
        loads = rng.uniform(0, 100, torus.n)
        report = sequentialize_round(loads, torus)
        u, v = torus.edges[:, 0], torus.edges[:, 1]
        sq = float(((loads[u] - loads[v]) ** 2).sum())
        assert report.total_drop >= report.lemma2_lower_bound - 1e-9
        assert report.lemma2_lower_bound >= sq / (4 * torus.max_degree) - 1e-9

    def test_balanced_state_all_zero(self, torus):
        report = sequentialize_round(np.full(torus.n, 5.0), torus)
        assert report.total_drop == pytest.approx(0.0)
        assert all(a.weight == 0 for a in report.activations)

    def test_size_mismatch_raises(self, torus):
        with pytest.raises(ValueError):
            sequentialize_round(np.ones(torus.n + 2), torus)

    def test_activation_metadata(self):
        t = Topology(2, [(0, 1)])
        report = sequentialize_round(np.asarray([10.0, 2.0]), t)
        act = report.activations[0]
        assert act.sender == 0 and act.receiver == 1
        assert act.initial_diff == pytest.approx(8.0)
        assert act.weight == pytest.approx(2.0)
        # Exact drop: 2*2*(10-2-2) = 24; bound: 2*8 = 16.
        assert act.drop == pytest.approx(24.0)
        assert act.lemma1_bound == pytest.approx(16.0)
        assert act.satisfies_lemma1


class TestSequentialAlgorithm:
    def test_sequential_drop_positive(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        final, drop = greedy_sequential_round(loads, torus)
        assert drop > 0
        assert potential(final) == pytest.approx(potential(loads) - drop, rel=1e-9)

    def test_sequential_conserves(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        final, _ = greedy_sequential_round(loads, torus)
        assert final.sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_gap_at_least_half(self, any_topology, rng):
        """Section 3: concurrency costs at most a factor two."""
        for _ in range(10):
            loads = rng.uniform(0, 1000, any_topology.n)
            gap = concurrency_gap(loads, any_topology)
            assert gap >= 0.5 - 1e-9

    def test_gap_infinite_when_balanced(self, torus):
        assert concurrency_gap(np.full(torus.n, 3.0), torus) == float("inf")

    def test_gap_two_nodes_exact(self):
        # Single edge: concurrent == sequential, gap exactly 1.
        t = Topology(2, [(0, 1)])
        assert concurrency_gap(np.asarray([8.0, 0.0]), t) == pytest.approx(1.0)
