"""Unit tests for the Balancer interface and registry."""

import numpy as np
import pytest

from repro.core.protocols import (
    Balancer,
    get_balancer,
    registered_balancers,
)


class TestRegistry:
    def test_expected_schemes_registered(self):
        names = registered_balancers()
        for expected in (
            "diffusion",
            "diffusion-discrete",
            "random-partner",
            "random-partner-discrete",
            "fos",
            "fos-floor",
            "fos-randomized",
            "sos",
            "matching-de",
            "matching-de-discrete",
            "round-robin-de",
            "ops",
        ):
            assert expected in names

    def test_get_balancer_constructs(self, torus):
        bal = get_balancer("diffusion", torus)
        assert bal.mode == "continuous"

    def test_get_balancer_unknown_raises(self, torus):
        with pytest.raises(KeyError, match="unknown balancer"):
            get_balancer("simulated-annealing", torus)

    def test_partner_scheme_without_topology(self):
        bal = get_balancer("random-partner")
        assert bal.mode == "continuous"

    def test_duplicate_registration_rejected(self):
        from repro.core.protocols import register_balancer

        with pytest.raises(ValueError, match="already registered"):

            @register_balancer("diffusion")
            def _dup(topology=None):  # pragma: no cover
                raise AssertionError


class _NoopBalancer(Balancer):
    name = "noop"

    def step(self, loads, rng):
        self.advance_round()
        return loads.copy()


class TestValidation:
    def test_continuous_casts_to_float(self):
        bal = _NoopBalancer()
        out = bal.validate_loads(np.asarray([1, 2, 3], dtype=np.int64))
        assert out.dtype == np.float64

    def test_discrete_accepts_integer_floats(self):
        bal = _NoopBalancer()
        bal.mode = "discrete"
        out = bal.validate_loads(np.asarray([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_discrete_rejects_fractional(self):
        bal = _NoopBalancer()
        bal.mode = "discrete"
        with pytest.raises(ValueError, match="integer"):
            bal.validate_loads(np.asarray([1.5, 2.0]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _NoopBalancer().validate_loads(np.asarray([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _NoopBalancer().validate_loads(np.asarray([]))

    def test_dtype_property(self):
        bal = _NoopBalancer()
        assert bal.dtype == np.dtype(np.float64)
        bal.mode = "discrete"
        assert bal.dtype == np.dtype(np.int64)


class TestState:
    def test_round_counter(self):
        bal = _NoopBalancer()
        rng = np.random.default_rng(0)
        bal.step(np.ones(3), rng)
        bal.step(np.ones(3), rng)
        assert bal.state.round == 2

    def test_reset_clears(self):
        bal = _NoopBalancer()
        bal.state.round = 5
        bal.state.history["x"] = np.ones(2)
        bal.reset()
        assert bal.state.round == 0
        assert bal.state.history == {}

    def test_repr(self):
        assert "noop" in repr(_NoopBalancer())
