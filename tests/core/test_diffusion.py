"""Unit tests for Algorithm 1 (diffusion) kernels and balancer."""

import numpy as np
import pytest

from repro.core.diffusion import (
    DiffusionBalancer,
    apply_edge_flows,
    diffusion_flows,
    diffusion_round_continuous,
    diffusion_round_discrete,
    edge_denominators,
)
from repro.core.potential import potential
from repro.graphs import generators as g
from repro.graphs.dynamic import StaticDynamics
from repro.graphs.topology import Topology


class TestFlows:
    def test_denominators_formula(self):
        t = g.star(4)  # hub degree 3, leaves degree 1
        assert edge_denominators(t).tolist() == [12.0, 12.0, 12.0]

    def test_continuous_flow_two_nodes(self):
        t = Topology(2, [(0, 1)])
        loads = np.asarray([10.0, 2.0])
        f = diffusion_flows(loads, t)
        # (10-2)/(4*max(1,1)) = 2
        assert f.tolist() == [2.0]

    def test_flow_antisymmetric_in_loads(self):
        t = Topology(2, [(0, 1)])
        f_ab = diffusion_flows(np.asarray([10.0, 2.0]), t)
        f_ba = diffusion_flows(np.asarray([2.0, 10.0]), t)
        assert f_ab[0] == -f_ba[0]

    def test_discrete_flow_floors_magnitude(self):
        t = Topology(2, [(0, 1)])
        f = diffusion_flows(np.asarray([9, 2], dtype=np.int64), t, discrete=True)
        assert f.dtype == np.int64
        assert f.tolist() == [1]  # floor(7/4)

    def test_discrete_flow_negative_direction(self):
        t = Topology(2, [(0, 1)])
        f = diffusion_flows(np.asarray([2, 9], dtype=np.int64), t, discrete=True)
        assert f.tolist() == [-1]

    def test_zero_diff_no_flow(self):
        t = Topology(2, [(0, 1)])
        assert diffusion_flows(np.asarray([5.0, 5.0]), t)[0] == 0.0


class TestApplyFlows:
    def test_apply_conserves(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        flows = diffusion_flows(loads, torus)
        out = apply_edge_flows(loads, torus, flows)
        assert out.sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_out_buffer_reuse(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        flows = diffusion_flows(loads, torus)
        buf = np.empty_like(loads)
        out = apply_edge_flows(loads, torus, flows, out=buf)
        assert out is buf

    def test_out_must_not_alias_input(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        flows = diffusion_flows(loads, torus)
        with pytest.raises(ValueError):
            apply_edge_flows(loads, torus, flows, out=loads)

    def test_input_not_mutated(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        snapshot = loads.copy()
        apply_edge_flows(loads, torus, diffusion_flows(loads, torus))
        assert np.array_equal(loads, snapshot)


class TestContinuousRound:
    def test_two_node_closed_form(self):
        t = Topology(2, [(0, 1)])
        out = diffusion_round_continuous(np.asarray([10.0, 2.0]), t)
        assert out.tolist() == [8.0, 4.0]

    def test_balanced_is_fixed_point(self, any_topology):
        loads = np.full(any_topology.n, 7.5)
        out = diffusion_round_continuous(loads, any_topology)
        assert np.allclose(out, loads)

    def test_potential_never_increases(self, any_topology, rng):
        loads = rng.uniform(0, 100, any_topology.n)
        for _ in range(10):
            new = diffusion_round_continuous(loads, any_topology)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new

    def test_theorem4_per_round_drop(self, any_topology, rng):
        from repro.graphs.spectral import lambda_2

        lam2 = lambda_2(any_topology)
        guaranteed = lam2 / (4 * any_topology.max_degree)
        loads = rng.uniform(0, 100, any_topology.n)
        phi = potential(loads)
        new_phi = potential(diffusion_round_continuous(loads, any_topology))
        assert (phi - new_phi) / phi >= guaranteed - 1e-9

    def test_loads_stay_nonnegative(self, any_topology, rng):
        # Damping by 1/(4 max degree) caps total outflow at 1/4 of surplus.
        loads = rng.uniform(0, 100, any_topology.n)
        for _ in range(5):
            loads = diffusion_round_continuous(loads, any_topology)
            assert (loads >= -1e-9).all()


class TestDiscreteRound:
    def test_two_node_closed_form(self):
        t = Topology(2, [(0, 1)])
        out = diffusion_round_discrete(np.asarray([10, 2], dtype=np.int64), t)
        assert out.tolist() == [8, 4]  # floor(8/4) = 2 moves

    def test_conservation_exact(self, any_topology, rng):
        loads = rng.integers(0, 10_000, any_topology.n).astype(np.int64)
        out = diffusion_round_discrete(loads, any_topology)
        assert out.sum() == loads.sum()
        assert out.dtype == np.int64

    def test_stalled_ramp_on_path(self):
        # The paper's example: load i on node i of a path never moves.
        t = g.path(6)
        loads = np.arange(6, dtype=np.int64)
        out = diffusion_round_discrete(loads, t)
        assert np.array_equal(out, loads)

    def test_potential_never_increases(self, any_topology, rng):
        loads = rng.integers(0, 10_000, any_topology.n).astype(np.int64)
        for _ in range(10):
            new = diffusion_round_discrete(loads, any_topology)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new

    def test_loads_stay_nonnegative(self, any_topology, rng):
        loads = rng.integers(0, 1000, any_topology.n).astype(np.int64)
        for _ in range(5):
            loads = diffusion_round_discrete(loads, any_topology)
            assert (loads >= 0).all()


class TestBalancer:
    def test_mode_validation(self, torus):
        with pytest.raises(ValueError):
            DiffusionBalancer(torus, mode="quantum")

    def test_discrete_rejects_fractional(self, torus):
        bal = DiffusionBalancer(torus, mode="discrete")
        with pytest.raises(ValueError):
            bal.step(np.full(torus.n, 1.5), np.random.default_rng(0))

    def test_rejects_negative_loads(self, torus):
        bal = DiffusionBalancer(torus, mode="continuous")
        loads = np.full(torus.n, 1.0)
        loads[0] = -1.0
        with pytest.raises(ValueError):
            bal.step(loads, np.random.default_rng(0))

    def test_size_mismatch(self, torus):
        bal = DiffusionBalancer(torus)
        with pytest.raises(ValueError, match="nodes"):
            bal.step(np.ones(torus.n + 1), np.random.default_rng(0))

    def test_step_matches_kernel(self, torus, rng):
        bal = DiffusionBalancer(torus, mode="discrete")
        loads = rng.integers(0, 500, torus.n).astype(np.int64)
        out = bal.step(loads, np.random.default_rng(0))
        assert np.array_equal(out, diffusion_round_discrete(loads, torus))

    def test_dynamic_network_round_tracking(self, torus):
        bal = DiffusionBalancer(StaticDynamics(torus), mode="continuous")
        assert bal.dynamic
        rng0 = np.random.default_rng(0)
        loads = np.ones(torus.n)
        bal.step(loads, rng0)
        bal.step(loads, rng0)
        assert bal.state.round == 2
        bal.reset()
        assert bal.state.round == 0

    def test_name_mentions_mode_and_graph(self, torus):
        assert "discrete" in DiffusionBalancer(torus, mode="discrete").name
        assert torus.name in DiffusionBalancer(torus).name
