"""Unit tests for the cached per-topology EdgeOperator."""

import numpy as np
import pytest

from repro.core.operators import EdgeOperator, edge_operator
from repro.graphs import generators as g
from repro.graphs.topology import Topology


class TestCaching:
    def test_same_instance_per_topology(self, torus):
        assert edge_operator(torus) is edge_operator(torus)

    def test_distinct_topologies_get_distinct_operators(self):
        a, b = g.torus_2d(4, 4), g.torus_2d(4, 4)
        assert edge_operator(a) is not edge_operator(b)

    def test_denominators_shared_with_topology_cache(self, torus):
        op = edge_operator(torus)
        assert op.denominators is torus.edge_denominators
        assert op.denominators_int is torus.edge_denominators_int

    def test_round_matrix_cached(self, torus):
        op = edge_operator(torus)
        if op.round_matrix() is None:
            pytest.skip("SciPy unavailable")
        assert op.round_matrix() is op.round_matrix()
        assert op.fos_round_matrix(0.2) is op.fos_round_matrix(0.2)
        assert op.fos_round_matrix(0.2) is not op.fos_round_matrix(0.1)


class TestDenominatorCache:
    def test_values_match_formula(self, any_topology):
        deg = any_topology.degrees
        u, v = any_topology.edges[:, 0], any_topology.edges[:, 1]
        want = 4 * np.maximum(deg[u], deg[v])
        assert np.array_equal(any_topology.edge_denominators_int, want)
        assert np.array_equal(any_topology.edge_denominators, want.astype(np.float64))

    def test_read_only(self, torus):
        with pytest.raises(ValueError):
            torus.edge_denominators[0] = 1.0


class TestRoundMatrix:
    def test_matches_flow_formulation(self, any_topology, rng):
        """M @ l equals the explicit flows-and-scatter round (within fp)."""
        op = edge_operator(any_topology)
        M = op.round_matrix()
        if M is None:
            pytest.skip("SciPy unavailable")
        loads = rng.uniform(0, 100, any_topology.n)
        diff = op.differences(loads)
        explicit = op.apply_flows(loads, diff / op.denominators)
        assert np.allclose(M @ loads, explicit, rtol=1e-12, atol=1e-9)

    def test_row_sums_one(self, any_topology):
        op = edge_operator(any_topology)
        M = op.round_matrix()
        if M is None:
            pytest.skip("SciPy unavailable")
        ones = np.ones(any_topology.n)
        assert np.allclose(M @ ones, ones)  # uniform loads are a fixed point

    def test_empty_graph_is_identity(self):
        topo = Topology(3, [])
        op = edge_operator(topo)
        loads = np.asarray([1.0, 2.0, 3.0])
        assert np.array_equal(op.round_continuous(loads), loads)
        assert np.array_equal(
            op.round_discrete(np.asarray([1, 2, 3], dtype=np.int64)), [1, 2, 3]
        )


class TestApplyFlows:
    def test_out_buffer_respected(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.uniform(0, 100, torus.n)
        flows = op.differences(loads) / op.denominators
        buf = np.empty_like(loads)
        out = op.apply_flows(loads, flows, out=buf)
        assert out is buf
        assert np.array_equal(out, op.apply_flows(loads, flows))

    def test_out_aliasing_rejected(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.uniform(0, 100, torus.n)
        flows = op.differences(loads) / op.denominators
        with pytest.raises(ValueError):
            op.apply_flows(loads, flows, out=loads)

    def test_int_apply_exact(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.integers(0, 10_000, torus.n).astype(np.int64)
        diff = op.differences(loads)
        flows = np.sign(diff) * (np.abs(diff) // op.denominators_int)
        out = op.apply_flows(loads, flows)
        assert out.dtype == np.int64
        assert out.sum() == loads.sum()


class TestScratch:
    def test_scratch_reused_by_key(self, torus):
        op = edge_operator(torus)
        a = op.scratch("x", (4, 2), np.float64)
        b = op.scratch("x", (4, 2), np.float64)
        assert a is b
        assert op.scratch("x", (4, 3), np.float64) is not a
        assert op.scratch("y", (4, 2), np.float64) is not a


class TestReciprocalFloorDivision:
    """The biased-reciprocal fast path is exact, with a guarded fallback."""

    def test_matches_integer_division_randomized(self, torus, rng):
        op = edge_operator(torus)
        for _ in range(20):
            diff = rng.integers(-(1 << 45), 1 << 45, torus.m)
            want = np.sign(diff) * (np.abs(diff) // op.denominators_int)
            got = op.floor_divide_denominators(diff, np.empty_like(diff))
            assert np.array_equal(got, want)

    def test_exact_at_multiples_of_denominator(self, torus):
        """Exact multiples are the adversarial case for reciprocal division:
        an unbiased reciprocal truncates them one short."""
        op = edge_operator(torus)
        for k in (0, 1, 2, 3, 1000, (1 << 45) // (8 * torus.max_degree)):
            for off in (-1, 0, 1):
                for sign in (1, -1):
                    diff = sign * (k * op.denominators_int + off)
                    want = np.sign(diff) * (np.abs(diff) // op.denominators_int)
                    got = op.floor_divide_denominators(diff, np.empty_like(diff))
                    assert np.array_equal(got, want), (k, off, sign)

    def test_batched_form(self, torus, rng):
        op = edge_operator(torus)
        diff = rng.integers(-(1 << 40), 1 << 40, (torus.m, 6))
        want = np.sign(diff) * (np.abs(diff) // op.denominators_int[:, None])
        got = op.floor_divide_denominators(diff, np.empty_like(diff))
        assert np.array_equal(got, want)

    def test_out_of_range_falls_back_exactly(self, torus):
        from repro.core.operators import RECIP_DIV_LIMIT

        op = edge_operator(torus)
        diff = np.full(torus.m, RECIP_DIV_LIMIT * 4, dtype=np.int64)
        diff[::2] = -diff[::2]
        want = np.sign(diff) * (np.abs(diff) // op.denominators_int)
        got = op.floor_divide_denominators(diff, np.empty_like(diff))
        assert np.array_equal(got, want)

    def test_round_discrete_unchanged_by_fast_path(self, any_topology, rng):
        """The discrete round is bit-identical whichever division path runs
        (both compute the exact floor)."""
        op = edge_operator(any_topology)
        loads = rng.integers(0, 100_000, any_topology.n).astype(np.int64)
        diff = op.differences(loads)
        flows = np.sign(diff) * (np.abs(diff) // op.denominators_int)
        want = op.apply_flows(loads, flows)
        got = op.round_discrete(loads)
        assert np.array_equal(got, want)

    def test_round_discrete_negative_loads_stay_exact(self, torus):
        """The fast-path guard must bound |diff| via max - min: a caller
        passing negative loads (the public kernel does not validate) must
        not slip oversized differences past the reciprocal exactness range."""
        from repro.core.operators import RECIP_DIV_LIMIT

        op = edge_operator(torus)
        loads = np.zeros(torus.n, dtype=np.int64)
        loads[0] = -(RECIP_DIV_LIMIT * 8 - 1)
        diff = op.differences(loads)
        flows = np.sign(diff) * (np.abs(diff) // op.denominators_int)
        want = op.apply_flows(loads, flows)
        assert np.array_equal(op.round_discrete(loads), want)

    def test_recip_cache_read_only(self, torus):
        op = edge_operator(torus)
        with pytest.raises(ValueError):
            op.denominators_recip[0] = 1.0
