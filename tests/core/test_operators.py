"""Unit tests for the cached per-topology EdgeOperator."""

import numpy as np
import pytest

from repro.core.operators import EdgeOperator, edge_operator
from repro.graphs import generators as g
from repro.graphs.topology import Topology


class TestCaching:
    def test_same_instance_per_topology(self, torus):
        assert edge_operator(torus) is edge_operator(torus)

    def test_distinct_topologies_get_distinct_operators(self):
        a, b = g.torus_2d(4, 4), g.torus_2d(4, 4)
        assert edge_operator(a) is not edge_operator(b)

    def test_denominators_shared_with_topology_cache(self, torus):
        op = edge_operator(torus)
        assert op.denominators is torus.edge_denominators
        assert op.denominators_int is torus.edge_denominators_int

    def test_round_matrix_cached(self, torus):
        op = edge_operator(torus)
        if op.round_matrix() is None:
            pytest.skip("SciPy unavailable")
        assert op.round_matrix() is op.round_matrix()
        assert op.fos_round_matrix(0.2) is op.fos_round_matrix(0.2)
        assert op.fos_round_matrix(0.2) is not op.fos_round_matrix(0.1)


class TestDenominatorCache:
    def test_values_match_formula(self, any_topology):
        deg = any_topology.degrees
        u, v = any_topology.edges[:, 0], any_topology.edges[:, 1]
        want = 4 * np.maximum(deg[u], deg[v])
        assert np.array_equal(any_topology.edge_denominators_int, want)
        assert np.array_equal(any_topology.edge_denominators, want.astype(np.float64))

    def test_read_only(self, torus):
        with pytest.raises(ValueError):
            torus.edge_denominators[0] = 1.0


class TestRoundMatrix:
    def test_matches_flow_formulation(self, any_topology, rng):
        """M @ l equals the explicit flows-and-scatter round (within fp)."""
        op = edge_operator(any_topology)
        M = op.round_matrix()
        if M is None:
            pytest.skip("SciPy unavailable")
        loads = rng.uniform(0, 100, any_topology.n)
        diff = op.differences(loads)
        explicit = op.apply_flows(loads, diff / op.denominators)
        assert np.allclose(M @ loads, explicit, rtol=1e-12, atol=1e-9)

    def test_row_sums_one(self, any_topology):
        op = edge_operator(any_topology)
        M = op.round_matrix()
        if M is None:
            pytest.skip("SciPy unavailable")
        ones = np.ones(any_topology.n)
        assert np.allclose(M @ ones, ones)  # uniform loads are a fixed point

    def test_empty_graph_is_identity(self):
        topo = Topology(3, [])
        op = edge_operator(topo)
        loads = np.asarray([1.0, 2.0, 3.0])
        assert np.array_equal(op.round_continuous(loads), loads)
        assert np.array_equal(
            op.round_discrete(np.asarray([1, 2, 3], dtype=np.int64)), [1, 2, 3]
        )


class TestApplyFlows:
    def test_out_buffer_respected(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.uniform(0, 100, torus.n)
        flows = op.differences(loads) / op.denominators
        buf = np.empty_like(loads)
        out = op.apply_flows(loads, flows, out=buf)
        assert out is buf
        assert np.array_equal(out, op.apply_flows(loads, flows))

    def test_out_aliasing_rejected(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.uniform(0, 100, torus.n)
        flows = op.differences(loads) / op.denominators
        with pytest.raises(ValueError):
            op.apply_flows(loads, flows, out=loads)

    def test_int_apply_exact(self, torus, rng):
        op = edge_operator(torus)
        loads = rng.integers(0, 10_000, torus.n).astype(np.int64)
        diff = op.differences(loads)
        flows = np.sign(diff) * (np.abs(diff) // op.denominators_int)
        out = op.apply_flows(loads, flows)
        assert out.dtype == np.int64
        assert out.sum() == loads.sum()


class TestScratch:
    def test_scratch_reused_by_key(self, torus):
        op = edge_operator(torus)
        a = op.scratch("x", (4, 2), np.float64)
        b = op.scratch("x", (4, 2), np.float64)
        assert a is b
        assert op.scratch("x", (4, 3), np.float64) is not a
        assert op.scratch("y", (4, 2), np.float64) is not a
