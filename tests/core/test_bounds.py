"""Unit tests for the paper's bound formulas."""

import math

import pytest

from repro.core import bounds as B


class TestTheorem4:
    def test_formula(self):
        # T = 4 * delta * ln(1/eps) / lambda2
        r = B.theorem4_rounds(delta=4, lam2=0.5, eps=1e-3)
        assert r.value == pytest.approx(4 * 4 * math.log(1e3) / 0.5)

    def test_monotone_in_eps(self):
        assert B.theorem4_rounds(4, 0.5, 1e-6).value > B.theorem4_rounds(4, 0.5, 1e-3).value

    def test_monotone_in_delta(self):
        assert B.theorem4_rounds(8, 0.5, 1e-3).value > B.theorem4_rounds(4, 0.5, 1e-3).value

    def test_eps_must_be_below_one(self):
        with pytest.raises(ValueError):
            B.theorem4_rounds(4, 0.5, 1.0)

    def test_positive_params_required(self):
        with pytest.raises(ValueError):
            B.theorem4_rounds(0, 0.5, 0.1)
        with pytest.raises(ValueError):
            B.theorem4_rounds(4, 0.0, 0.1)

    def test_float_conversion_and_describe(self):
        r = B.theorem4_rounds(4, 0.5, 0.1)
        assert float(r) == r.value
        assert "Theorem 4" in r.describe()


class TestTheorem6:
    def test_threshold_formula(self):
        r = B.theorem6_threshold(n=64, delta=4, lam2=0.5)
        assert r.value == pytest.approx(64 * 4**3 * 64 / 0.5)

    def test_threshold_linear_in_n(self):
        a = B.theorem6_threshold(64, 4, 0.5).value
        b = B.theorem6_threshold(128, 4, 0.5).value
        assert b == pytest.approx(2 * a)

    def test_rounds_formula(self):
        phi_star = B.theorem6_threshold(64, 4, 0.5).value
        r = B.theorem6_rounds(64, 4, 0.5, phi0=phi_star * math.e)
        assert r.value == pytest.approx(8 * 4 / 0.5)

    def test_rounds_zero_below_threshold(self):
        phi_star = B.theorem6_threshold(64, 4, 0.5).value
        assert B.theorem6_rounds(64, 4, 0.5, phi0=phi_star / 2).value == 0.0

    def test_lemma5_drop(self):
        assert B.lemma5_drop_factor(4, 0.5).value == pytest.approx(0.5 / 32)


class TestDynamic:
    def test_theorem7_formula(self):
        r = B.theorem7_rounds(average_gap=0.1, eps=1e-2)
        assert r.value == pytest.approx(4 * math.log(100) / 0.1)

    def test_theorem7_eps_check(self):
        with pytest.raises(ValueError):
            B.theorem7_rounds(0.1, 2.0)

    def test_theorem8_threshold(self):
        assert B.theorem8_threshold(10, worst_term=5.0).value == pytest.approx(3200.0)

    def test_theorem8_rounds(self):
        r = B.theorem8_rounds(average_gap=0.2, phi0=1e6, phi_star=1e3)
        assert r.value == pytest.approx(8 * math.log(1e3) / 0.2)

    def test_theorem8_rounds_zero_below_threshold(self):
        assert B.theorem8_rounds(0.2, phi0=10.0, phi_star=100.0).value == 0.0


class TestRandomPartners:
    def test_lemma9_constant(self):
        assert B.lemma9_probability_bound().value == 0.5

    def test_lemma11_constant(self):
        assert B.lemma11_drop_factor().value == pytest.approx(0.95)

    def test_lemma13_constant(self):
        assert B.lemma13_drop_factor().value == pytest.approx(0.975)

    def test_theorem12_rounds(self):
        assert B.theorem12_rounds(phi0=math.e**2, c=1.0).value == pytest.approx(240.0)

    def test_theorem12_needs_phi_above_one(self):
        with pytest.raises(ValueError):
            B.theorem12_rounds(phi0=0.5, c=1.0)

    def test_theorem12_success_probability(self):
        p = B.theorem12_success_probability(phi0=10_000.0, c=4.0)
        assert p.value == pytest.approx(1 - 10_000.0**-1.0)

    def test_theorem14_rounds(self):
        n = 10
        phi0 = 3200 * n * math.e
        assert B.theorem14_rounds(phi0, n, c=1.0).value == pytest.approx(240.0)

    def test_theorem14_rounds_zero_below_threshold(self):
        assert B.theorem14_rounds(100.0, 10, c=1.0).value == 0.0

    def test_theorem14_threshold(self):
        assert B.theorem14_threshold(7).value == pytest.approx(22400.0)

    def test_theorem14_success_needs_ratio_above_one(self):
        with pytest.raises(ValueError):
            B.theorem14_success_probability(100.0, 10, c=1.0)


class TestComparisons:
    def test_gm94_drop_is_quarter_of_theorem4(self):
        # Section 3: Algorithm 1's guaranteed drop lambda2/(4 delta) is 4x
        # the [GM94] expected drop lambda2/(16 delta).
        gm = B.ghosh_muthukrishnan_drop_factor(4, 0.5).value
        alg1 = 0.5 / (4 * 4)
        assert alg1 == pytest.approx(4 * gm)
