"""Unit tests for Algorithm 2 (random balancing partners)."""

import numpy as np
import pytest

from repro.core.potential import potential
from repro.core.random_partner import (
    RandomPartnerBalancer,
    link_degrees,
    partner_flows,
    partner_round_continuous,
    partner_round_discrete,
    sample_partner_links,
    sample_partners,
)


class TestSampling:
    def test_partner_never_self(self, rng):
        for n in (2, 3, 17, 100):
            partners = sample_partners(n, rng)
            assert (partners != np.arange(n)).all()

    def test_partner_in_range(self, rng):
        partners = sample_partners(50, rng)
        assert partners.min() >= 0 and partners.max() < 50

    def test_partner_distribution_uniform(self):
        # Node 0's partner should be uniform over {1,...,n-1}.
        n, trials = 5, 40_000
        rng = np.random.default_rng(0)
        counts = np.zeros(n)
        for _ in range(trials):
            counts[sample_partners(n, rng)[0]] += 1
        assert counts[0] == 0
        expected = trials / (n - 1)
        assert np.abs(counts[1:] - expected).max() < 5 * np.sqrt(expected)

    def test_needs_two_nodes(self, rng):
        with pytest.raises(ValueError):
            sample_partners(1, rng)

    def test_links_canonical_unique(self, rng):
        links = sample_partner_links(64, rng)
        assert (links[:, 0] < links[:, 1]).all()
        assert np.unique(links, axis=0).shape == links.shape

    def test_link_count_bounds(self, rng):
        # n picks collapse to between n/2 (all mutual) and n links.
        for _ in range(20):
            links = sample_partner_links(40, rng)
            assert 20 <= links.shape[0] <= 40

    def test_every_node_has_a_link(self, rng):
        links = sample_partner_links(32, rng)
        deg = link_degrees(32, links)
        assert (deg >= 1).all()

    def test_degrees_sum_twice_links(self, rng):
        links = sample_partner_links(32, rng)
        assert link_degrees(32, links).sum() == 2 * links.shape[0]


class TestFlows:
    def test_flow_formula_continuous(self):
        links = np.asarray([[0, 1]])
        deg = np.asarray([2, 3])
        loads = np.asarray([20.0, 8.0])
        f = partner_flows(loads, links, deg)
        assert f[0] == pytest.approx((20 - 8) / (4 * 3))

    def test_flow_formula_discrete(self):
        links = np.asarray([[0, 1]])
        deg = np.asarray([1, 1])
        f = partner_flows(np.asarray([9, 0], dtype=np.int64), links, deg, discrete=True)
        assert f[0] == 2  # floor(9/4)

    def test_round_conserves_continuous(self, rng):
        loads = rng.uniform(0, 100, 50)
        out = partner_round_continuous(loads, rng)
        assert out.sum() == pytest.approx(loads.sum(), rel=1e-12)

    def test_round_conserves_discrete(self, rng):
        loads = rng.integers(0, 10_000, 50).astype(np.int64)
        out = partner_round_discrete(loads, rng)
        assert out.sum() == loads.sum()
        assert out.dtype == np.int64

    def test_potential_never_increases_continuous(self, rng):
        loads = rng.uniform(0, 100, 64)
        for _ in range(20):
            new = partner_round_continuous(loads, rng)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new

    def test_potential_never_increases_discrete(self, rng):
        loads = rng.integers(0, 10_000, 64).astype(np.int64)
        for _ in range(20):
            new = partner_round_discrete(loads, rng)
            assert potential(new) <= potential(loads) + 1e-9
            loads = new

    def test_lemma11_expected_drop(self):
        # Average the one-round ratio over many trials: must be <= 19/20
        # (measured is typically ~0.7).
        rng = np.random.default_rng(7)
        n = 128
        loads = np.zeros(n)
        loads[0] = 1000.0
        ratios = []
        for _ in range(300):
            out = partner_round_continuous(loads, rng)
            ratios.append(potential(out) / potential(loads))
        assert np.mean(ratios) <= 19 / 20

    def test_two_nodes_balance_quarter(self):
        rng = np.random.default_rng(0)
        out = partner_round_continuous(np.asarray([8.0, 0.0]), rng)
        # Only one link possible: (0,1), degrees 1,1; transfer 8/4 = 2.
        assert out.tolist() == [6.0, 2.0]


class TestBalancer:
    def test_step_records_links(self, rng):
        bal = RandomPartnerBalancer()
        loads = np.ones(16) * 4
        bal.step(loads, rng)
        assert bal.last_links is not None
        assert bal.last_degrees is not None
        assert bal.last_degrees.sum() == 2 * bal.last_links.shape[0]

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RandomPartnerBalancer(mode="hybrid")

    def test_discrete_step_integer(self, rng):
        bal = RandomPartnerBalancer(mode="discrete")
        out = bal.step(np.full(16, 10, dtype=np.int64), rng)
        assert out.dtype == np.int64

    def test_deterministic_given_seed(self):
        loads = np.zeros(32)
        loads[0] = 320.0
        a = RandomPartnerBalancer().step(loads, np.random.default_rng(9))
        b = RandomPartnerBalancer().step(loads, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_different_rounds_different_links(self):
        bal = RandomPartnerBalancer()
        rng = np.random.default_rng(1)
        loads = np.full(64, 5.0)
        bal.step(loads, rng)
        first = bal.last_links.copy()
        bal.step(loads, rng)
        assert not np.array_equal(first, bal.last_links)
