"""Unit tests for imbalance measures (incl. Lemma 10's identity)."""

import numpy as np
import pytest

import importlib

P = importlib.import_module("repro.core.potential")


class TestPotential:
    def test_balanced_vector_zero(self):
        assert P.potential(np.full(7, 3.0)) == 0.0

    def test_known_value(self):
        # loads [0, 2], mean 1: (0-1)^2 + (2-1)^2 = 2.
        assert P.potential(np.asarray([0.0, 2.0])) == pytest.approx(2.0)

    def test_point_load_closed_form(self):
        n, w = 10, 50.0
        loads = np.zeros(n)
        loads[0] = w
        # Phi = (w - w/n)^2 + (n-1)(w/n)^2 = w^2 (1 - 1/n).
        assert P.potential(loads) == pytest.approx(w * w * (1 - 1 / n))

    def test_translation_invariance(self, rng):
        v = rng.uniform(0, 10, 20)
        assert P.potential(v + 123.0) == pytest.approx(P.potential(v), rel=1e-9)

    def test_integer_input_no_overflow(self):
        # Large int64 loads must be computed in float64.
        v = np.asarray([10**9, 0, 0, 0], dtype=np.int64)
        assert P.potential(v) == pytest.approx(1e18 * (1 - 0.25), rel=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            P.potential(np.asarray([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            P.potential(np.zeros((2, 2)))


class TestDrop:
    def test_drop_positive_when_balancing(self):
        before = np.asarray([10.0, 0.0])
        after = np.asarray([6.0, 4.0])
        assert P.potential_drop(before, after) > 0

    def test_drop_zero_for_identical(self, rng):
        v = rng.uniform(0, 5, 9)
        assert P.potential_drop(v, v.copy()) == pytest.approx(0.0)


class TestDiscrepancyError:
    def test_discrepancy_known(self):
        assert P.discrepancy(np.asarray([1, 5, 3])) == 4

    def test_error_vector_sums_to_zero(self, rng):
        e = P.error_vector(rng.uniform(0, 9, 33))
        assert e.sum() == pytest.approx(0.0, abs=1e-9)

    def test_l2_error_is_sqrt_potential(self, rng):
        v = rng.uniform(0, 9, 12)
        assert P.l2_error(v) == pytest.approx(np.sqrt(P.potential(v)), rel=1e-12)

    def test_average_load(self):
        assert P.average_load(np.asarray([1, 2, 3], dtype=np.int64)) == pytest.approx(2.0)


class TestLemma10:
    """The identity sum_ij (l_i - l_j)^2 = 2 n Phi(L)."""

    def test_identity_on_random_vectors(self, rng):
        for _ in range(10):
            v = rng.uniform(-100, 100, 17)
            closed = P.pairwise_square_sum(v)
            naive = P.pairwise_square_sum_naive(v)
            assert closed == pytest.approx(naive, rel=1e-12)

    def test_identity_equals_2n_phi(self, rng):
        v = rng.uniform(0, 10, 11)
        assert P.pairwise_square_sum(v) == pytest.approx(2 * 11 * P.potential(v), rel=1e-12)

    def test_identity_two_elements(self):
        v = np.asarray([0.0, 4.0])
        # sum_ij = (0-4)^2 + (4-0)^2 = 32; 2*2*Phi = 4*8 = 32.
        assert P.pairwise_square_sum(v) == pytest.approx(32.0)
        assert P.pairwise_square_sum_naive(v) == pytest.approx(32.0)

    def test_identity_constant_vector(self):
        v = np.full(6, 2.5)
        assert P.pairwise_square_sum(v) == 0.0
        assert P.pairwise_square_sum_naive(v) == 0.0
