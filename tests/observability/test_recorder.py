"""Unit tests for the telemetry recorder: aggregation, JSONL round-trip,
the disabled-path no-op guarantees, and the Prometheus export."""

import json

import pytest

from repro.observability import (
    NULL_RECORDER,
    PHASES,
    SCHEMA_VERSION,
    Recorder,
    configure,
    get_recorder,
    load_trace,
    metrics_to_prom,
    set_recorder,
    shutdown,
    validate_trace,
)
from repro.observability.recorder import _NULL_SPAN


@pytest.fixture(autouse=True)
def _restore_global_recorder():
    """Never leak an installed recorder into other tests."""
    yield
    set_recorder(None)


class TestDisabledPath:
    def test_default_recorder_is_disabled(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_span_returns_shared_null_singleton(self):
        rec = Recorder(enabled=False)
        # Identity, not just equality: the disabled path allocates nothing.
        assert rec.span("a") is rec.span("b") is _NULL_SPAN
        with rec.span("a"):
            pass

    def test_all_recording_methods_are_noops(self):
        rec = Recorder(enabled=False)
        rec.record_span("x", 0.0, 1.0)
        rec.event("x")
        rec.count("x", 3)
        rec.add("x")
        rec.observe("x", 0.5)
        assert rec.n_events == 0
        assert rec.drain_events() == []
        snap = rec.metrics_snapshot()
        assert snap == {"counters": {}, "metrics": {}}

    def test_configure_without_flags_keeps_disabled_default(self):
        rec = configure(trace=None, metrics=False)
        assert rec is NULL_RECORDER
        assert get_recorder() is NULL_RECORDER


class TestAggregation:
    def test_metric_snapshot_folds(self):
        rec = Recorder(enabled=True)
        for v in (0.1, 0.2, 0.3, 0.4):
            rec.observe("lat", v)
        m = rec.metrics_snapshot()["metrics"]["lat"]
        assert m["count"] == 4
        assert m["sum"] == pytest.approx(1.0)
        assert m["min"] == pytest.approx(0.1)
        assert m["max"] == pytest.approx(0.4)
        assert m["min"] <= m["p50"] <= m["p99"] <= m["max"]

    def test_percentiles_deterministic_ring(self):
        rec = Recorder(enabled=True)
        # Overflow the reservoir: percentiles reflect recent observations
        # and identical runs give identical snapshots.
        for i in range(5000):
            rec.observe("lat", float(i % 100))
        m = rec.metrics_snapshot()["metrics"]["lat"]
        assert m["count"] == 5000
        assert m["p50"] == pytest.approx(50.0, abs=2.0)
        assert m["p99"] == pytest.approx(99.0, abs=2.0)

    def test_counters(self):
        rec = Recorder(enabled=True)
        rec.add("bytes", 100)
        rec.add("bytes", 50)
        rec.count("halo_bytes", 7, link="0->1", round=0)
        assert rec.metrics_snapshot()["counters"] == {
            "bytes": 150, "halo_bytes": 7}

    def test_span_feeds_metric(self):
        rec = Recorder(enabled=True)
        rec.record_span("interior", 10.0, 10.5, round=0)
        m = rec.metrics_snapshot()["metrics"]["interior"]
        assert m["count"] == 1
        assert m["sum"] == pytest.approx(0.5)

    def test_span_context_manager(self):
        rec = Recorder(enabled=True)
        with rec.span("phase", round=3):
            pass
        (ev,) = rec.drain_events()
        assert ev["ev"] == "span" and ev["name"] == "phase"
        assert ev["round"] == 3 and ev["dur"] >= 0


class TestShipping:
    def test_drain_and_ingest_with_labels(self):
        worker = Recorder(enabled=True, role="block:1", base={"block": 1})
        worker.record_span("interior", 0.0, 0.25, round=4)
        worker.count("halo_bytes", 64, link="1->0", round=4)
        events = worker.drain_events()
        assert worker.drain_events() == []  # drained

        main = Recorder(enabled=True)
        main.ingest(events, worker="host:1234")
        merged = main.drain_events()
        assert all(ev["worker"] == "host:1234" for ev in merged)
        assert all(ev["block"] == 1 for ev in merged)
        # Span durations and count values fold into the main registry.
        snap = main.metrics_snapshot()
        assert snap["metrics"]["interior"]["sum"] == pytest.approx(0.25)
        assert snap["counters"]["halo_bytes"] == 64

    def test_ingest_into_disabled_recorder_is_noop(self):
        rec = Recorder(enabled=False)
        rec.ingest([{"ev": "span", "name": "x", "t": 0, "dur": 1}])
        assert rec.n_events == 0


class TestJsonlRoundTrip:
    def test_flush_load_validate(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        rec = Recorder(enabled=True, path=path, role="test")
        rec.record_span("interior", 1.0, 1.5, round=0, block=0)
        rec.count("halo_bytes", 32, link="0->1", round=0)
        rec.event("checkpoint", round=0)
        rec.flush()
        rec.record_span("boundary", 2.0, 2.1, round=1, block=0)
        rec.flush()  # appends; meta written exactly once

        events = load_trace(path)
        assert validate_trace(events) == []
        assert events[0]["ev"] == "meta"
        assert events[0]["schema"] == SCHEMA_VERSION
        assert events[0]["role"] == "test"
        kinds = [ev["ev"] for ev in events[1:]]
        assert kinds == ["span", "count", "event", "span"]

    def test_shutdown_flushes_and_restores_default(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        rec = configure(trace=path)
        assert get_recorder() is rec and rec.enabled
        rec.record_span("round", 0.0, 0.1, round=0)
        out = shutdown()
        assert out is rec
        assert get_recorder() is NULL_RECORDER
        assert validate_trace(load_trace(path)) == []

    def test_validate_catches_malformed(self):
        assert validate_trace([]) == ["trace is empty"]
        assert validate_trace([{"ev": "span", "name": "x", "t": 0, "dur": 1}])
        bad = [
            {"ev": "meta", "schema": SCHEMA_VERSION},
            {"ev": "span", "name": "x", "t": 0.0, "dur": -1.0},
            {"ev": "count", "name": "y"},
            {"ev": "bogus"},
        ]
        problems = validate_trace(bad)
        assert len(problems) == 3

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"meta","schema":1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))


class TestPromExport:
    def test_render(self):
        rec = Recorder(enabled=True)
        rec.add("transport.tcp.bytes_sent", 1024)
        rec.observe("interior", 0.5)
        rec.observe("interior", 1.5)
        text = metrics_to_prom(rec.metrics_snapshot())
        assert "# TYPE repro_transport_tcp_bytes_sent_total counter" in text
        assert "repro_transport_tcp_bytes_sent_total 1024" in text
        assert "# TYPE repro_interior_seconds summary" in text
        assert 'repro_interior_seconds{quantile="0.5"}' in text
        assert 'repro_interior_seconds{quantile="0.99"}' in text
        assert "repro_interior_seconds_sum 2.0" in text
        assert "repro_interior_seconds_count 2" in text
        assert text.endswith("\n")

    def test_empty_snapshot(self):
        assert metrics_to_prom({"counters": {}, "metrics": {}}) == ""

    def test_phases_constant(self):
        assert set(PHASES) >= {"interior", "boundary", "halo_send", "halo_wait"}
