"""``repro-lb top``: sparkline, view builders, the pure frame renderer,
and the run loop against both sources (a live endpoint and a trace)."""

import json

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.observability import Recorder, set_recorder, trace_report
from repro.observability.server import StatusBoard, get_status_board, start_metrics_server
from repro.observability.top import (
    render_frame,
    run_top,
    sparkline,
    view_from_endpoints,
    view_from_report,
)
from repro.simulation.engine import Simulator
from repro.simulation.stopping import MaxRounds


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    get_status_board().clear()
    set_recorder(None)


class TestSparkline:
    def test_log_scale_spans_blocks(self):
        s = sparkline([1.0, 10.0, 100.0, 1000.0])
        assert len(s) == 4
        assert s[0] != s[-1]  # three decades apart: different glyphs

    def test_empty_and_nonpositive_filtered(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, -1.0, float("nan")]) == ""

    def test_constant_series_is_flat(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(s) == 3 and len(set(s)) == 1

    def test_width_keeps_the_tail(self):
        assert len(sparkline(list(range(1, 100)), width=10)) == 10


_STATUS = {
    "role": "dispatcher",
    "uptime_s": 12.5,
    "job": {
        "mode": "sharded-dispatch",
        "shards": 8,
        "shards_done": 3,
        "rounds": 100,
        "workers_live": {
            "w1": {"last_seen_age_s": 0.2, "hb_count": 40,
                   "stats": {"rounds_done": 50, "jobs_done": 2, "jobs_accepted": 3,
                             "busy_s": 1.5,
                             "phase_s": {"interior": 1.0, "boundary": 0.25,
                                         "send": 0.15, "wait": 0.1}}},
            "w2": {"last_seen_age_s": 30.0, "stale": True, "hb_count": 12},
        },
        "links": {"w1->w2": 4096},
    },
    "convergence": {
        "phi_recent": [[0, 100.0], [1, 50.0], [2, 25.0]],
        "rounds_observed": 2,
        "empirical_drop_factor": 0.5,
        "drop_bound": 0.03,
        "violations": 0,
        "stalls": 0,
    },
}


class TestViews:
    def test_view_from_endpoints(self):
        view = view_from_endpoints(_STATUS, {"status": "degraded"})
        assert view["role"] == "dispatcher" and view["health"] == "degraded"
        assert view["job"]["shards_done"] == 3
        w1 = view["workers"]["w1"]
        assert w1["jobs"] == "2/3" and not w1["stale"]
        assert w1["shares"]["interior"] == pytest.approx(1.0 / 1.5)
        assert view["workers"]["w2"]["stale"] is True
        assert view["links"]["w1->w2"] == {"bytes": 4096, "per_round": pytest.approx(40.96)}
        conv = view["convergence"]
        assert conv["phi_series"] == [100.0, 50.0, 25.0]
        assert conv["empirical"] == 0.5 and conv["bound"] == 0.03

    def test_view_from_endpoints_skips_error_sections(self):
        view = view_from_endpoints({"role": "worker", "convergence": {"error": "boom"}})
        assert view["convergence"] is None
        assert view["workers"] == {}

    def test_view_from_report_on_traced_run(self):
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        loads = np.zeros(topo.n)
        loads[0] = 1600.0
        try:
            Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(15)]).run(loads, 0)
        finally:
            set_recorder(None)
        view = view_from_report(trace_report(rec.drain_events()))
        conv = view["convergence"]
        assert conv["verdict"] == "ok"
        assert len(conv["phi_series"]) == 16
        assert conv["empirical"] >= conv["bound"]


class TestRenderFrame:
    def test_frame_has_roster_links_and_conv(self):
        frame = render_frame(
            view_from_endpoints(_STATUS, {"status": "degraded"}), source="x:1")
        assert "repro-lb top — x:1" in frame
        assert "health=DEGRADED" in frame
        assert "shards_done=3" in frame
        assert "30.0!" in frame  # stale worker age flagged
        assert "w1->w2" in frame and "4096" in frame
        assert "violations=0" in frame
        assert "Phi ↓ [log]" in frame

    def test_empty_view_renders_header_only(self):
        frame = render_frame(view_from_endpoints({"role": "worker"}))
        assert frame.startswith("repro-lb top")
        assert "worker" in frame


class TestRunTop:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            run_top()
        with pytest.raises(ValueError):
            run_top(connect="h:1", trace="t.jsonl")

    def test_trace_source_single_frame(self, tmp_path):
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        loads = np.zeros(topo.n)
        loads[0] = 1600.0
        try:
            Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(10)]).run(loads, 0)
        finally:
            set_recorder(None)
        path = tmp_path / "run.jsonl"
        with open(path, "w") as fh:
            for ev in rec.drain_events():
                fh.write(json.dumps(ev) + "\n")
        chunks: list[str] = []
        rc = run_top(trace=str(path), clear=False, out=chunks.append)
        assert rc == 0
        assert len(chunks) == 1  # no --follow: one frame, then exit
        assert "repro-lb top" in chunks[0]
        assert "Phi ↓ [log]" in chunks[0]

    def test_connect_source_against_live_server(self):
        board = StatusBoard()
        board.update(role="worker", pid=1)
        board.register("job", lambda: _STATUS["job"])
        rec = Recorder(enabled=True)
        rec.add("halo_bytes", 512)
        srv = start_metrics_server("127.0.0.1:0", board=board, recorder=rec)
        try:
            chunks: list[str] = []
            rc = run_top(connect=f"{srv.address[0]}:{srv.address[1]}",
                         frames=1, clear=False, out=chunks.append)
        finally:
            srv.stop()
        assert rc == 0
        assert "health=OK" not in chunks[0]  # w2's 30s lag degrades health
        assert "health=DEGRADED" in chunks[0]
        assert "w1" in chunks[0]

    def test_unreachable_endpoint_renders_error_frame(self):
        chunks: list[str] = []
        rc = run_top(connect="127.0.0.1:9", frames=1, clear=False, out=chunks.append)
        assert rc == 0
        assert "unreachable" in chunks[0]
