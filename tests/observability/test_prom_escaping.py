"""Prometheus exposition escaping: metric names outside the prom charset,
label values with quotes/backslashes/newlines, and non-finite samples.

The exposition format is strict — one bad character in a family name or
an unescaped quote in a label value and the whole scrape fails to parse —
so the sanitizers are pinned down here sample by sample.
"""

from repro.observability import Recorder, metrics_to_prom, prom_sample
from repro.observability.recorder import _prom_label_value, _prom_name, _prom_value


class TestNameSanitization:
    def test_dots_become_underscores(self):
        assert _prom_name("transport.tcp.send_s", "repro") == "repro_transport_tcp_send_s"

    def test_spaces_and_dashes_mapped(self):
        assert _prom_name("halo-bytes per round", "repro") == "repro_halo_bytes_per_round"

    def test_non_ascii_alnum_not_waved_through(self):
        # str.isalnum() is True for these; prom still rejects them.
        assert _prom_name("Φ²", "repro") == "repro___"

    def test_dotted_counter_round_trips_through_exposition(self):
        rec = Recorder(enabled=True)
        rec.add("transport.tcp.bytes", 10)
        text = metrics_to_prom(rec.metrics_snapshot())
        assert "# TYPE repro_transport_tcp_bytes_total counter" in text
        assert "repro_transport_tcp_bytes_total 10" in text


class TestValueRendering:
    def test_ints_render_without_decimal(self):
        assert _prom_value(1024) == "1024"

    def test_floats_keep_float_syntax(self):
        # Integral floats must NOT collapse to ints: summary sums are
        # float-typed and scrapers (and our own tests) expect "2.0".
        assert _prom_value(2.0) == "2.0"
        assert _prom_value(0.5) == "0.5"

    def test_bool_is_not_an_int(self):
        assert _prom_value(True) == "1.0"
        assert _prom_value(False) == "0.0"

    def test_non_finite_spellings(self):
        assert _prom_value(float("inf")) == "+Inf"
        assert _prom_value(float("-inf")) == "-Inf"
        assert _prom_value(float("nan")) == "NaN"

    def test_unconvertible_becomes_nan(self):
        assert _prom_value("bogus") == "NaN"
        assert _prom_value(None) == "NaN"


class TestLabelEscaping:
    def test_quote_backslash_newline(self):
        assert _prom_label_value('a"b') == 'a\\"b'
        assert _prom_label_value("a\\b") == "a\\\\b"
        assert _prom_label_value("a\nb") == "a\\nb"

    def test_prom_sample_labeled(self):
        line = prom_sample("worker_age", {"worker": "127.0.0.1:7001"}, 1.5)
        assert line == 'repro_worker_age{worker="127.0.0.1:7001"} 1.5'

    def test_prom_sample_sanitizes_label_names_and_escapes_values(self):
        line = prom_sample("x", {"weird key": 'v"'}, 1)
        assert line == 'repro_x{weird_key="v\\""} 1'

    def test_prom_sample_unlabeled(self):
        assert prom_sample("up", None, 1) == "repro_up 1"
        assert prom_sample("up", {}, 1) == "repro_up 1"
