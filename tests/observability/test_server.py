"""The live observability plane: StatusBoard, roster aging, and the
``/metrics`` / ``/healthz`` / ``/status`` HTTP endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro.observability import Recorder, set_recorder
from repro.observability.server import (
    MetricsServer,
    StatusBoard,
    age_out_workers,
    get_status_board,
    parse_address,
    start_metrics_server,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    get_status_board().clear()
    set_recorder(None)


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)

    def test_tuple_passes_through(self):
        assert parse_address(("h", 1)) == ("h", 1)

    def test_bare_port_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("8080")


class TestStatusBoard:
    def test_fields_and_providers_merge(self):
        board = StatusBoard()
        board.update(role="worker", pid=42)
        board.register("job", lambda: {"shards": 4})
        snap = board.snapshot()
        assert snap["role"] == "worker" and snap["pid"] == 42
        assert snap["job"] == {"shards": 4}
        assert snap["uptime_s"] >= 0

    def test_provider_exception_captured_per_section(self):
        board = StatusBoard()
        board.register("bad", lambda: 1 / 0)
        board.register("good", lambda: {"ok": True})
        snap = board.snapshot()
        assert "ZeroDivisionError" in snap["bad"]["error"]
        assert snap["good"] == {"ok": True}

    def test_unregister(self):
        board = StatusBoard()
        board.register("x", lambda: 1)
        board.unregister("x")
        assert "x" not in board.snapshot()
        board.unregister("x")  # idempotent

    def test_global_board_is_a_singleton(self):
        assert get_status_board() is get_status_board()


class TestAgeOut:
    def test_fresh_entries_pass_through(self):
        live = {"w": {"last_seen_age_s": 0.5}}
        assert age_out_workers(live) == live

    def test_stale_entries_flagged(self):
        out = age_out_workers({"w": {"last_seen_age_s": 30.0}})
        assert out["w"]["stale"] is True

    def test_dead_entries_evicted(self):
        out = age_out_workers({
            "dead": {"last_seen_age_s": 120.0},
            "fresh": {"last_seen_age_s": 1.0},
        })
        assert "dead" not in out and "fresh" in out

    def test_custom_windows(self):
        live = {"w": {"last_seen_age_s": 1.0}}
        assert age_out_workers(live, stale_after=0.5, evict_after=10.0)["w"]["stale"] is True
        assert age_out_workers(live, stale_after=0.2, evict_after=0.5) == {}

    def test_entries_without_numeric_age_untouched(self):
        live = {"w": {"hb_count": 3}, "v": "odd"}
        assert age_out_workers(live) == live

    def test_input_roster_is_not_mutated(self):
        live = {"w": {"last_seen_age_s": 30.0}}
        age_out_workers(live)
        assert "stale" not in live["w"]


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        rec = Recorder(enabled=True)
        rec.add("halo_bytes", 2048)
        rec.observe("interior", 0.25)
        board = StatusBoard()
        board.update(role="worker", pid=1)
        board.register("job", lambda: {
            "shards": 2,
            "workers_live": {
                "fresh": {"last_seen_age_s": 0.1},
                "lagging": {"last_seen_age_s": 30.0},
                "dead": {"last_seen_age_s": 120.0},
            },
        })
        srv = start_metrics_server("127.0.0.1:0", board=board, recorder=rec)
        yield srv
        srv.stop()

    def test_ephemeral_port_resolved(self, server):
        host, port = server.address
        assert host == "127.0.0.1" and port != 0
        assert server.url == f"http://127.0.0.1:{port}"

    def test_metrics_exposition(self, server):
        code, body = _get(server.url + "/metrics")
        assert code == 200
        assert "repro_halo_bytes_total 2048" in body
        assert "# TYPE repro_interior_seconds summary" in body
        assert 'repro_worker_last_seen_age_seconds{worker="fresh"}' in body
        assert 'worker="dead"' not in body  # evicted from the gauge too

    def test_healthz_degraded_by_stale_worker(self, server):
        code, body = _get(server.url + "/healthz")
        assert code == 200
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["role"] == "worker"
        assert payload["workers"]["lagging"]["stale"] is True
        assert payload["workers"]["fresh"]["stale"] is False
        assert "dead" not in payload["workers"]

    def test_status_roster_aged_out(self, server):
        code, body = _get(server.url + "/status")
        assert code == 200
        payload = json.loads(body)
        assert payload["role"] == "worker"
        live = payload["job"]["workers_live"]
        assert "dead" not in live
        assert live["lagging"]["stale"] is True
        assert payload["job"]["shards"] == 2

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_provider_error_never_breaks_the_endpoint(self):
        board = StatusBoard()
        board.register("job", lambda: 1 / 0)
        with MetricsServer("127.0.0.1:0", board=board) as srv:
            code, body = _get(srv.url + "/status")
            assert code == 200
            assert "ZeroDivisionError" in json.loads(body)["job"]["error"]

    def test_render_status_does_not_mutate_provider_output(self):
        section = {"workers_live": {"dead": {"last_seen_age_s": 120.0}}}
        board = StatusBoard()
        board.register("job", lambda: section)
        srv = MetricsServer("127.0.0.1:0", board=board)
        snap = srv.render_status()
        assert snap["job"]["workers_live"] == {}
        # The provider's live dict — dispatcher state — is untouched.
        assert section["workers_live"]["dead"]["last_seen_age_s"] == 120.0

    def test_context_manager_with_default_globals(self):
        with MetricsServer("127.0.0.1:0") as srv:
            code, body = _get(srv.url + "/healthz")
            assert code == 200
            assert json.loads(body)["status"] == "ok"
