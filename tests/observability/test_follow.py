"""Incremental trace tailing: TraceFollower byte-offset semantics and
ReportBuilder's fold-equals-batch guarantee (what ``trace-report
--follow`` and ``top --trace --follow`` are built on)."""

import json

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.observability import (
    Recorder,
    ReportBuilder,
    TraceFollower,
    set_recorder,
    trace_report,
)
from repro.observability.server import get_status_board
from repro.simulation.engine import Simulator
from repro.simulation.stopping import MaxRounds


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    get_status_board().clear()
    set_recorder(None)


def _lines(events):
    return "".join(json.dumps(ev) + "\n" for ev in events)


class TestTraceFollower:
    def test_missing_file_polls_empty(self, tmp_path):
        follower = TraceFollower(str(tmp_path / "nope.jsonl"))
        assert follower.poll() == []
        assert follower.offset == 0

    def test_incremental_equals_batch(self, tmp_path):
        events = [{"name": "phi", "round": r, "value": float(100 - r)} for r in range(9)]
        path = tmp_path / "t.jsonl"
        follower = TraceFollower(str(path))
        seen = []
        for chunk in (events[:3], events[3:4], events[4:]):
            with open(path, "a") as fh:
                fh.write(_lines(chunk))
            seen.extend(follower.poll())
        assert seen == events

    def test_offset_advances_and_nothing_rereads(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n')
        follower = TraceFollower(str(path))
        assert follower.poll() == [{"a": 1}]
        first_offset = follower.offset
        assert first_offset == path.stat().st_size
        assert follower.poll() == []
        assert follower.offset == first_offset

    def test_partial_line_buffered_until_newline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a":')
        follower = TraceFollower(str(path))
        assert follower.poll() == []  # half a record: hold, don't fail
        with open(path, "a") as fh:
            fh.write(' 1}\n{"b": 2}\n')
        assert follower.poll() == [{"a": 1}, {"b": 2}]

    def test_truncated_file_resets(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        follower = TraceFollower(str(path))
        follower.poll()
        path.write_text('{"c": 3}\n')  # rotation: shorter than our offset
        assert follower.poll() == [{"c": 3}]

    def test_bad_json_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        follower = TraceFollower(str(path))
        with pytest.raises(ValueError, match=r"t\.jsonl:2: "):
            follower.poll()


class TestReportBuilderFold:
    @pytest.fixture(scope="class")
    def traced_events(self):
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        loads = np.zeros(topo.n)
        loads[0] = 1600.0
        try:
            Simulator(
                DiffusionBalancer(topo), stopping=[MaxRounds(20)],
            ).run(loads, 0)
        finally:
            set_recorder(None)
        return rec.drain_events()

    def test_one_by_one_fold_equals_one_shot(self, traced_events):
        builder = ReportBuilder()
        for ev in traced_events:
            builder.add(ev)
        assert builder.report() == trace_report(traced_events)

    def test_report_is_a_prefix_snapshot(self, traced_events):
        builder = ReportBuilder()
        half = len(traced_events) // 2
        builder.add_many(traced_events[:half])
        assert builder.report() == trace_report(traced_events[:half])
        builder.add_many(traced_events[half:])
        assert builder.report() == trace_report(traced_events)

    def test_follower_to_builder_round_trip(self, tmp_path, traced_events):
        path = tmp_path / "run.jsonl"
        path.write_text(_lines(traced_events))
        follower = TraceFollower(str(path))
        builder = ReportBuilder()
        builder.add_many(follower.poll())
        report = builder.report()
        assert report == trace_report(traced_events)
        assert report["convergence"]["verdict"] == "ok"
