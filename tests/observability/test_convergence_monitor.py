"""Analytical-bound convergence diagnostics.

The monitor turns Theorem 4 / Lemma 5 / Theorem 6 into live per-round
checks; these tests pin down the unit behavior (violation / stall /
threshold logic, event caps, summary fit), the ``monitor_for`` gating,
the bounded-cost ``lambda_2`` acquisition, and the engine integration —
including the non-negotiable bit-for-bit guarantee with tracing on.
"""

import numpy as np
import pytest

from repro.core.bounds import lemma5_drop_factor, theorem6_threshold
from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import by_name, torus_2d
from repro.graphs.spectral import lambda_2, lambda2_torus
from repro.observability import Recorder, set_recorder, trace_report
from repro.observability.convergence import (
    _MAX_EVENT_LINES,
    ConvergenceMonitor,
    _bounded_lambda2,
    _closed_form_lambda2,
    monitor_for,
)
from repro.observability.server import get_status_board
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.stopping import MaxRounds


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    get_status_board().clear()
    set_recorder(None)


def _named(rec: Recorder, name: str) -> list[dict]:
    return [ev for ev in rec.drain_events() if ev.get("name") == name]


class TestLambda2Acquisition:
    @pytest.mark.parametrize("spec", [
        "cycle:32", "path:17", "torus:6x8", "hypercube:5", "complete:16", "star:32",
    ])
    def test_closed_form_matches_spectral(self, spec):
        topo = by_name(spec)
        assert _closed_form_lambda2(topo.name) == pytest.approx(
            lambda_2(topo), rel=1e-9)

    def test_unknown_families_are_none(self):
        assert _closed_form_lambda2("petersen") is None
        assert _closed_form_lambda2("debruijn:6") is None
        assert _closed_form_lambda2("torus:notxnums") is None

    def test_large_closed_form_family_is_instant(self):
        # n=2304 > the cold-eigensolve limit, but the torus closed form
        # still arms the monitor (this is what keeps a heartbeat-
        # supervised worker alive when telemetry is on).
        topo = torus_2d(48, 48)
        assert _bounded_lambda2(topo) == pytest.approx(lambda2_torus(48, 48))

    def test_large_unknown_family_is_skipped(self):
        topo = by_name("debruijn:11")  # n=2048, no closed form
        assert _bounded_lambda2(topo) is None

    def test_small_unknown_family_uses_dense_solve(self):
        topo = by_name("petersen")
        assert _bounded_lambda2(topo) == pytest.approx(lambda_2(topo))


class TestMonitorFor:
    def test_disabled_recorder_gives_none(self):
        bal = DiffusionBalancer(torus_2d(4, 4))
        assert monitor_for(bal, Recorder(enabled=False)) is None

    def test_non_diffusion_balancer_gives_none(self):
        class NotDiffusion:
            pass

        assert monitor_for(NotDiffusion(), Recorder(enabled=True)) is None

    def test_armed_monitor_carries_paper_bounds(self):
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        mon = monitor_for(DiffusionBalancer(topo, mode="discrete"), rec)
        assert mon is not None
        lam2 = lambda_2(topo)
        assert mon.drop_bound == pytest.approx(
            lemma5_drop_factor(topo.max_degree, lam2).value, rel=1e-9)
        assert mon.threshold == pytest.approx(
            theorem6_threshold(topo.n, topo.max_degree, lam2).value, rel=1e-9)
        (params,) = _named(rec, "convergence_params")
        assert params["mode"] == "discrete" and params["n"] == 16

    def test_continuous_mode_has_no_threshold(self):
        topo = torus_2d(4, 4)
        mon = monitor_for(DiffusionBalancer(topo), Recorder(enabled=True))
        assert mon.threshold == 0.0
        assert mon.drop_bound == pytest.approx(
            lambda_2(topo) / (4.0 * topo.max_degree))

    def test_env_overrides_misparameterize(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_LAM2", "4.0")
        monkeypatch.setenv("REPRO_CONV_DELTA", "2")
        mon = monitor_for(
            DiffusionBalancer(torus_2d(4, 4)), Recorder(enabled=True))
        assert mon.lam2 == 4.0 and mon.delta == 2


class TestMonitorObserve:
    def _mk(self, **kw):
        rec = Recorder(enabled=True)
        params = dict(n=16, delta=4, lam2=1.0, mode="continuous")
        params.update(kw)
        return rec, ConvergenceMonitor(rec, **params)

    def test_healthy_geometric_series(self):
        rec, mon = self._mk()  # bound = 1/16
        phi = 1000.0
        mon.observe([phi])
        for _ in range(10):
            phi *= 0.5
            mon.observe([phi])
        summary = mon.finish()
        assert summary["violations"] == 0 and summary["stalls"] == 0
        assert mon.empirical_drop_factor == pytest.approx(0.5)
        events = rec.drain_events()
        assert sum(ev.get("name") == "phi" for ev in events) == 11
        assert sum(ev.get("name") == "convergence_summary" for ev in events) == 1

    def test_violation_fires_below_bound(self):
        rec, mon = self._mk(lam2=3.2)  # bound = 0.2
        mon.observe([1000.0])
        mon.observe([999.0])  # drop 0.001 << 0.2
        (ev,) = _named(rec, "bound_violation")
        assert ev["observed"] == pytest.approx(0.001)
        assert ev["bound"] == pytest.approx(0.2)
        assert ev["round"] == 1
        assert mon.finish()["violations"] == 1

    def test_discrete_threshold_suppresses_checks_below(self):
        rec, mon = self._mk(mode="discrete")
        assert mon.threshold > 0
        lo = mon.threshold / 10.0
        mon.observe([lo])
        mon.observe([lo])  # flat below Phi*: Lemma 5 promises nothing
        assert mon.finish()["violations"] == 0
        assert _named(rec, "bound_violation") == []

    def test_stall_detected_after_patience(self):
        rec, mon = self._mk(stall_patience=3)
        mon.observe([100.0])
        for _ in range(4):
            mon.observe([100.0])
        (ev,) = _named(rec, "stall_detected")
        assert ev["rounds_flat"] == 3
        assert mon.finish()["stalls"] == 1  # latched: fires once

    def test_event_lines_capped_but_all_counted(self):
        rec, mon = self._mk(lam2=3.2)  # every round violates
        phi = 1e6
        mon.observe([phi])
        for _ in range(60):
            phi *= 0.999
            mon.observe([phi])
        assert len(_named(rec, "bound_violation")) == _MAX_EVENT_LINES
        assert mon.finish()["violations"] == 60

    def test_per_replica_masking(self):
        rec, mon = self._mk(lam2=3.2)  # bound = 0.2
        mon.observe([100.0, 100.0])
        # Replica 1 is inactive (stopped): its flat potential is ignored.
        mon.observe([50.0, 100.0], active=np.array([True, False]))
        assert mon.finish()["violations"] == 0

    def test_finish_is_idempotent(self):
        rec, mon = self._mk()
        mon.observe([10.0])
        mon.observe([5.0])
        first = mon.finish()
        again = mon.finish()
        assert again["rounds_observed"] == first["rounds_observed"]
        assert len(_named(rec, "convergence_summary")) == 1

    def test_board_snapshot_registered(self):
        rec, mon = self._mk()
        mon.observe([10.0])
        snap = get_status_board().snapshot()["convergence"]
        assert snap["rounds_observed"] == 0
        assert snap["phi_recent"] == [[0, 10.0]]


class TestEngineIntegration:
    def test_serial_traced_run_verdict_ok(self):
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        loads = np.zeros(topo.n)
        loads[0] = 1600.0
        Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(40)]).run(loads, 0)
        set_recorder(None)
        conv = trace_report(rec.drain_events())["convergence"]
        assert conv["verdict"] == "ok"
        assert conv["violations"] == 0 and conv["stalls"] == 0
        assert len(conv["rounds"]) == 41  # baseline + 40 rounds
        assert conv["empirical_drop_factor"] >= conv["predicted_drop_bound"] * 0.999

    def test_misparameterized_run_emits_bound_violation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_LAM2", "8.0")  # absurd for a torus
        topo = torus_2d(4, 4)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        loads = np.zeros(topo.n)
        loads[0] = 1600.0
        Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(40)]).run(loads, 0)
        set_recorder(None)
        conv = trace_report(rec.drain_events())["convergence"]
        assert conv["verdict"] == "violated"
        assert conv["violations"] > 0

    def test_ensemble_traced_is_bit_for_bit_and_ok(self):
        topo = torus_2d(4, 4)
        rng = np.random.default_rng(7)
        loads = rng.integers(0, 1000, topo.n).astype(np.int64)

        def bal():
            return DiffusionBalancer(topo, mode="discrete")

        ref = EnsembleSimulator(
            bal(), stopping=[MaxRounds(30)], serial_singleton=False,
        ).run(loads.copy(), seed=0, replicas=3)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        traced = EnsembleSimulator(
            bal(), stopping=[MaxRounds(30)], serial_singleton=False,
        ).run(loads.copy(), seed=0, replicas=3)
        set_recorder(None)
        assert np.array_equal(ref.final_loads, traced.final_loads)
        assert np.array_equal(ref.potentials_matrix, traced.potentials_matrix)
        conv = trace_report(rec.drain_events())["convergence"]
        assert conv["verdict"] == "ok"

    def test_partitioned_traced_matches_serial(self):
        from repro.simulation.partitioned import PartitionedSimulator

        topo = torus_2d(4, 4)
        rng = np.random.default_rng(3)
        loads = rng.integers(0, 1000, topo.n).astype(np.int64)
        serial = Simulator(
            DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(25)],
        ).run(loads.copy(), 0)
        rec = Recorder(enabled=True)
        set_recorder(rec)
        part = PartitionedSimulator(
            DiffusionBalancer(topo, mode="discrete"),
            partitions=2, stopping=[MaxRounds(25)],
        ).run(loads.copy(), replicas=1)
        set_recorder(None)
        assert np.array_equal(
            np.asarray(serial._last_loads, dtype=np.int64), part.final_loads[0])
        conv = trace_report(rec.drain_events())["convergence"]
        assert conv["verdict"] == "ok"

    def test_untraced_run_never_builds_a_monitor(self):
        # Tracing off: the board must stay empty (structurally zero-cost).
        topo = torus_2d(4, 4)
        loads = np.zeros(topo.n)
        loads[0] = 160.0
        Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(5)]).run(loads, 0)
        assert "convergence" not in get_status_board().snapshot()
