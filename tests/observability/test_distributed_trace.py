"""End-to-end telemetry over tcp: traced dispatch stays bit-for-bit,
the merged trace validates against the schema, and the opt-in stats
frames never confuse a peer (protocol-4 compatibility)."""

import time

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.distributed.dispatcher import (
    WorkerHandle,
    close_workers,
    connect_workers,
    dispatch_partitioned,
    dispatch_sharded,
)
from repro.distributed.worker import launch_worker_process
from repro.graphs.generators import torus_2d
from repro.observability import (
    Recorder,
    load_trace,
    set_recorder,
    trace_report,
    validate_trace,
)
from repro.simulation.engine import Simulator
from repro.simulation.stopping import MaxRounds

ROUNDS = 12


@pytest.fixture(scope="module")
def workers():
    procs, addrs = [], []
    for _ in range(2):
        proc, addr = launch_worker_process(extra_args=("--timeout", "60"))
        procs.append(proc)
        addrs.append(addr)
    yield addrs
    for proc in procs:
        proc.terminate()
    for proc in procs:
        proc.wait(timeout=10)


@pytest.fixture(autouse=True)
def _restore_global_recorder():
    yield
    set_recorder(None)


def _loads(topo, seed=5):
    return np.random.default_rng(seed).uniform(0.0, 10_000.0, topo.n)


class TestTracedDispatchParity:
    def test_partitioned_trace_schema_and_parity(self, workers, tmp_path):
        """The acceptance scenario: a 2-worker tcp partitioned run with
        tracing on equals the untraced serial engine bit for bit, and
        the merged trace validates and covers every phase/link."""
        topo = torus_2d(6, 6)
        loads = _loads(topo)
        serial = Simulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)],
            keep_snapshots=True).run(loads.copy(), 0)
        expected = [np.asarray(s) for s in serial._snapshots]

        path = str(tmp_path / "dispatch.jsonl")
        set_recorder(Recorder(enabled=True, path=path, role="dispatcher"))
        trace, stats = dispatch_partitioned(
            DiffusionBalancer(topo), loads.copy(), workers,
            partitions=4, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
            stats_interval=0.05,
        )
        rec = set_recorder(None)
        rec.close()

        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"

        events = load_trace(path)
        assert validate_trace(events) == []
        spans = [ev for ev in events if ev.get("ev") == "span"]
        names = {ev["name"] for ev in spans}
        assert {"interior", "halo_send", "halo_wait", "chunk"} <= names

        # Every worker-phase span carries the worker label the
        # dispatcher stamped at ingest; each maps to a roster address.
        phase_spans = [ev for ev in spans
                       if ev["name"] in ("interior", "halo_send", "halo_wait")]
        assert phase_spans
        assert {ev["worker"] for ev in phase_spans} == set(stats["workers"])

        report = trace_report(events)
        assert report["rounds"] == ROUNDS
        assert set(report["workers"]) == set(stats["workers"])
        for w in report["workers"].values():
            assert 0.999 < sum(w["share"].values()) < 1.001
        # Per-link bytes in the trace equal the transport's own count.
        for link, nbytes in stats["links"].items():
            if nbytes:
                assert report["links"][link]["bytes"] == nbytes
                assert report["links"][link]["wait_s"] >= 0.0

    def test_untraced_dispatch_sends_no_events(self, workers):
        """Telemetry off (the default recorder) — the payload flag is
        false, workers skip the traced round entirely."""
        topo = torus_2d(6, 6)
        trace, stats = dispatch_partitioned(
            DiffusionBalancer(topo), _loads(topo), workers,
            partitions=2, stopping=[MaxRounds(ROUNDS)],
        )
        assert stats["rounds"] == ROUNDS


class TestStatsFrameProtocol:
    def test_consume_aside_shapes(self):
        """The three ``"stats"``-tagged frame shapes stay disjoint:
        only the unsolicited 3-tuple progress frame is consumed."""
        h = WorkerHandle(address=("127.0.0.1", 1), channel=None)
        assert h._consume_aside(("hb", 1)) is True
        assert h.hb_count == 1
        # Unsolicited progress frame: consumed, latest-seq wins.
        assert h._consume_aside(("stats", 1, {"rounds_done": 3})) is True
        assert h._consume_aside(("stats", 0, {"rounds_done": 1})) is True
        assert h.stats == {"rounds_done": 3} and h.stats_seq == 1
        # Block chunk reply (4/5-tuple, msg[1] a list): NOT consumed.
        assert h._consume_aside(("stats", [1.0], {}, {})) is False
        assert h._consume_aside(("stats", [1.0], {}, {}, [])) is False
        # Merged partition reply (2-tuple): NOT consumed.
        assert h._consume_aside(("stats", {0: ([], {}, {})})) is False
        assert h._consume_aside(("ok",)) is False
        assert h._consume_aside("hb") is False

    def test_liveness_summary(self):
        h = WorkerHandle(address=("127.0.0.1", 1), channel=None)
        for _ in range(3):
            h._consume_aside(("hb", 0))
            time.sleep(0.01)
        live = h.liveness()
        assert live["hb_count"] == 3
        assert live["last_seen_age_s"] >= 0.0
        assert live["hb_interval_mean_s"] > 0.0
        assert (live["hb_interval_min_s"] <= live["hb_interval_mean_s"]
                <= live["hb_interval_max_s"])

    def test_worker_streams_stats_only_when_asked(self, workers):
        """Protocol compat: a peer that didn't request stats never sees
        a stats frame; one that did gets monotonically-sequenced
        snapshots without corrupting job replies."""
        plain = connect_workers([workers[0]], timeout=10.0)
        asked = connect_workers([workers[1]], timeout=10.0,
                                stats_interval=0.05)
        try:
            assert plain[0].info.get("stats") is None
            assert asked[0].info.get("stats") == pytest.approx(0.05)
            time.sleep(0.3)
            # Drain pending frames: aside frames (hb/stats) are consumed
            # inside try_recv and report as None; a job frame would leak
            # through and fail the assertion.
            for h in (plain[0], asked[0]):
                for _ in range(10):
                    assert h.try_recv(0.01) is None
            assert plain[0].stats is None
            assert asked[0].stats is not None
            snap = asked[0].stats
            assert {"uptime_s", "jobs_accepted", "jobs_done", "rounds_done",
                    "busy_s", "phase_s"} <= set(snap)
        finally:
            close_workers(plain + asked)

    def test_sharded_dispatch_with_stats_frames(self, workers):
        """Stats frames interleave with shard replies; the event loop
        must route around them and liveness must reach the stats dict."""
        topo = torus_2d(6, 6)
        loads = _loads(topo)
        from repro.simulation.ensemble import EnsembleSimulator

        ens = EnsembleSimulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)],
            serial_singleton=False)
        expected = ens.run(loads.copy(), seed=0, replicas=4)
        trace, stats = dispatch_sharded(
            DiffusionBalancer(topo), loads.copy(), workers,
            shards=2, seed=0, replicas=4,
            stopping=[MaxRounds(ROUNDS)],
            heartbeat=0.05, stats_interval=0.05,
        )
        assert np.array_equal(expected.final_loads, trace.final_loads)
        assert stats["stats_interval"] == pytest.approx(0.05)
        assert set(stats["workers_live"]) == set(stats["workers"])
        for live in stats["workers_live"].values():
            assert "last_seen_age_s" in live and "hb_count" in live
