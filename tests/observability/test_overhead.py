"""The telemetry bargain: tracing-off costs (almost) nothing, and
tracing-on never changes a trajectory.

Two guards:

1. **Structural no-op guard** — with the recorder disabled the round
   loops never call into the recorder at all (a poisoned ``record_span``
   proves the ``if traced:`` hoisting works), and the disabled ``span()``
   path returns a shared singleton (no allocation).
2. **Bit-for-bit invariance** — serial, ensemble and partitioned runs
   produce byte-identical trajectories with tracing on and off.
"""

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.observability import Recorder, set_recorder
from repro.observability.recorder import get_recorder
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.partitioned import PartitionedSimulator
from repro.simulation.stopping import MaxRounds

ROUNDS = 15


@pytest.fixture(autouse=True)
def _restore_global_recorder():
    yield
    set_recorder(None)


def _loads(topo, seed=3):
    return np.random.default_rng(seed).uniform(0.0, 10_000.0, topo.n)


def _poisoned_recorder():
    """A disabled recorder whose recording methods raise if ever called."""

    class Poisoned(Recorder):
        def record_span(self, *a, **k):  # pragma: no cover - must not run
            raise AssertionError("record_span called with tracing off")

        def event(self, *a, **k):  # pragma: no cover - must not run
            raise AssertionError("event called with tracing off")

    return Poisoned(enabled=False)


class TestDisabledPathIsNeverEntered:
    """The hot loops hoist ``traced = rec.enabled`` — recorder off means
    zero recorder calls per round, hence zero telemetry allocations."""

    def test_serial_loop(self):
        set_recorder(_poisoned_recorder())
        topo = torus_2d(4, 4)
        Simulator(DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)]).run(
            _loads(topo), 0)

    def test_ensemble_loop(self):
        set_recorder(_poisoned_recorder())
        topo = torus_2d(4, 4)
        EnsembleSimulator(DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)]).run(
            _loads(topo), seed=0, replicas=3)

    def test_partitioned_loop(self):
        set_recorder(_poisoned_recorder())
        topo = torus_2d(4, 4)
        PartitionedSimulator(
            DiffusionBalancer(topo), partitions=2,
            stopping=[MaxRounds(ROUNDS)],
        ).run(_loads(topo))


class TestBitForBitInvariance:
    """Tracing observes; it must never perturb arithmetic or ordering."""

    def _run_serial(self, topo):
        sim = Simulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)],
            keep_snapshots=True)
        trace = sim.run(_loads(topo), 0)
        return [np.asarray(s).copy() for s in trace._snapshots]

    def test_serial(self, tmp_path):
        topo = torus_2d(5, 5)
        plain = self._run_serial(topo)
        set_recorder(Recorder(enabled=True, path=str(tmp_path / "t.jsonl")))
        traced = self._run_serial(topo)
        set_recorder(None)
        assert len(plain) == len(traced)
        for a, b in zip(plain, traced):
            assert np.array_equal(a, b)

    def _run_partitioned(self, topo):
        sim = PartitionedSimulator(
            DiffusionBalancer(topo), partitions=4, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True)
        trace = sim.run(_loads(topo))
        return [np.asarray(s).copy() for s in trace.snapshots]

    def test_partitioned_inprocess(self, tmp_path):
        topo = torus_2d(6, 6)
        plain = self._run_partitioned(topo)
        set_recorder(Recorder(enabled=True, path=str(tmp_path / "t.jsonl")))
        traced = self._run_partitioned(topo)
        rec = get_recorder()
        set_recorder(None)
        assert rec.n_events > 0  # tracing actually happened
        for a, b in zip(plain, traced):
            assert np.array_equal(a, b)

    def test_ensemble(self, tmp_path):
        topo = torus_2d(5, 5)
        def run():
            ens = EnsembleSimulator(
                DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)])
            return ens.run(_loads(topo), seed=7, replicas=4)
        plain = run()
        set_recorder(Recorder(enabled=True, path=str(tmp_path / "t.jsonl")))
        traced = run()
        set_recorder(None)
        assert np.array_equal(plain.final_loads, traced.final_loads)
        assert np.array_equal(
            plain.potentials_matrix, traced.potentials_matrix)
