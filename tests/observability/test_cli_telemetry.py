"""CLI wiring for telemetry: --trace/--metrics flags, trace-report."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability import NULL_RECORDER, get_recorder, load_trace, validate_trace


@pytest.fixture(autouse=True)
def _recorder_stays_clean():
    yield
    # Every command must shut its recorder down on exit.
    assert get_recorder() is NULL_RECORDER


class TestParser:
    def test_telemetry_flags_parse(self):
        p = build_parser()
        args = p.parse_args([
            "run", "--balancer", "diffusion", "--topology", "cycle:8",
            "--trace", "t.jsonl", "--metrics",
        ])
        assert args.trace == "t.jsonl" and args.metrics is True
        args = p.parse_args(["trace-report", "t.jsonl", "--json"])
        assert args.command == "trace-report" and args.json

    def test_worker_log_level(self):
        args = build_parser().parse_args(["worker", "--log-level", "debug"])
        assert args.log_level == "debug"
        args = build_parser().parse_args([
            "dispatch", "--workers", "h:1", "--balancer", "diffusion",
            "--topology", "cycle:8",
        ])
        assert args.log_level == "info"


class TestRunTraced:
    def test_run_writes_valid_trace(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "20", "--trace", path,
        ])
        assert rc == 0
        events = load_trace(path)
        assert validate_trace(events) == []
        rounds = [ev for ev in events
                  if ev.get("ev") == "span" and ev["name"] == "round"]
        assert len(rounds) == 20

    def test_run_metrics_prints_prom(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--metrics",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_round_seconds summary" in out
        assert "repro_round_seconds_count 10" in out

    def test_traced_run_matches_untraced(self, tmp_path, capsys):
        argv = ["run", "--balancer", "diffusion-discrete",
                "--topology", "torus:4x4", "--rounds", "25"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr().out
        assert plain == traced  # summary (phi, discrepancy...) identical

    def test_partitioned_run_traced(self, tmp_path, capsys):
        path = str(tmp_path / "part.jsonl")
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "15", "--partitions", "2", "--trace", path,
        ])
        assert rc == 0
        events = load_trace(path)
        assert validate_trace(events) == []
        names = {ev["name"] for ev in events if ev.get("ev") == "span"}
        assert "round" in names
        rounds = [ev for ev in events
                  if ev.get("ev") == "span" and ev["name"] == "round"]
        assert {ev["engine"] for ev in rounds} == {"partitioned"}


class TestTraceReport:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_text(self, trace_path, capsys):
        assert main(["trace-report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "rounds observed: 10" in out
        assert "round" in out and "span" in out

    def test_json(self, trace_path, capsys):
        assert main(["trace-report", trace_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rounds"] == 10
        assert report["totals"]["round"]["count"] == 10
        assert report["meta"]["schema"] == 1

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "nope" in capsys.readouterr().err

    def test_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev":"span","name":"x"}\n')
        assert main(["trace-report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid trace" in err
