"""CLI wiring for telemetry: --trace/--metrics flags, trace-report
(including --follow), --serve-metrics, and the top dashboard."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability import NULL_RECORDER, get_recorder, load_trace, validate_trace
from repro.observability.server import get_status_board


@pytest.fixture(autouse=True)
def _recorder_stays_clean():
    yield
    # Every command must shut its recorder down on exit.
    assert get_recorder() is NULL_RECORDER
    get_status_board().clear()


class TestParser:
    def test_telemetry_flags_parse(self):
        p = build_parser()
        args = p.parse_args([
            "run", "--balancer", "diffusion", "--topology", "cycle:8",
            "--trace", "t.jsonl", "--metrics",
        ])
        assert args.trace == "t.jsonl" and args.metrics is True
        args = p.parse_args(["trace-report", "t.jsonl", "--json"])
        assert args.command == "trace-report" and args.json

    def test_worker_log_level(self):
        args = build_parser().parse_args(["worker", "--log-level", "debug"])
        assert args.log_level == "debug"
        args = build_parser().parse_args([
            "dispatch", "--workers", "h:1", "--balancer", "diffusion",
            "--topology", "cycle:8",
        ])
        assert args.log_level == "info"

    def test_serve_metrics_flag_on_worker_and_dispatch(self):
        p = build_parser()
        args = p.parse_args(["worker", "--serve-metrics", "0.0.0.0:9099"])
        assert args.serve_metrics == "0.0.0.0:9099"
        args = p.parse_args([
            "dispatch", "--workers", "h:1", "--balancer", "diffusion",
            "--topology", "cycle:8", "--serve-metrics", "127.0.0.1:9100",
        ])
        assert args.serve_metrics == "127.0.0.1:9100"
        args = p.parse_args(["worker"])
        assert args.serve_metrics is None

    def test_trace_report_follow_flags(self):
        args = build_parser().parse_args([
            "trace-report", "t.jsonl", "--follow", "--interval", "0.2",
            "--frames", "3",
        ])
        assert args.follow and args.interval == 0.2 and args.frames == 3
        args = build_parser().parse_args(["trace-report", "t.jsonl"])
        assert not args.follow and args.frames == 0

    def test_top_requires_exactly_one_source(self):
        p = build_parser()
        args = p.parse_args(["top", "--connect", "h:9099"])
        assert args.connect == "h:9099" and args.trace is None
        args = p.parse_args(["top", "--trace", "t.jsonl", "--follow", "--no-clear"])
        assert args.trace == "t.jsonl" and args.follow and args.no_clear
        with pytest.raises(SystemExit):
            p.parse_args(["top"])
        with pytest.raises(SystemExit):
            p.parse_args(["top", "--connect", "h:1", "--trace", "t.jsonl"])


class TestRunTraced:
    def test_run_writes_valid_trace(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "20", "--trace", path,
        ])
        assert rc == 0
        events = load_trace(path)
        assert validate_trace(events) == []
        rounds = [ev for ev in events
                  if ev.get("ev") == "span" and ev["name"] == "round"]
        assert len(rounds) == 20

    def test_run_metrics_prints_prom(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--metrics",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_round_seconds summary" in out
        assert "repro_round_seconds_count 10" in out

    def test_traced_run_matches_untraced(self, tmp_path, capsys):
        argv = ["run", "--balancer", "diffusion-discrete",
                "--topology", "torus:4x4", "--rounds", "25"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr().out
        assert plain == traced  # summary (phi, discrepancy...) identical

    def test_partitioned_run_traced(self, tmp_path, capsys):
        path = str(tmp_path / "part.jsonl")
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "15", "--partitions", "2", "--trace", path,
        ])
        assert rc == 0
        events = load_trace(path)
        assert validate_trace(events) == []
        names = {ev["name"] for ev in events if ev.get("ev") == "span"}
        assert "round" in names
        rounds = [ev for ev in events
                  if ev.get("ev") == "span" and ev["name"] == "round"]
        assert {ev["engine"] for ev in rounds} == {"partitioned"}


class TestTraceReport:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_text(self, trace_path, capsys):
        assert main(["trace-report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "rounds observed: 10" in out
        assert "round" in out and "span" in out

    def test_json(self, trace_path, capsys):
        assert main(["trace-report", trace_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rounds"] == 10
        assert report["totals"]["round"]["count"] == 10
        assert report["meta"]["schema"] == 1

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "nope" in capsys.readouterr().err

    def test_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev":"span","name":"x"}\n')
        assert main(["trace-report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid trace" in err

    def test_convergence_columns_in_text_report(self, trace_path, capsys):
        assert main(["trace-report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "convergence: verdict=OK" in out
        assert "drop factor: empirical" in out
        import re
        assert re.search(r"round\s+phi\s+drop\s+bound", out)  # table header

    def test_follow_single_frame_text(self, trace_path, capsys):
        assert main([
            "trace-report", trace_path, "--follow", "--frames", "1",
            "--interval", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "rounds observed: 10" in out
        assert "convergence: verdict=OK" in out

    def test_follow_single_frame_json(self, trace_path, capsys):
        assert main([
            "trace-report", trace_path, "--json", "--follow", "--frames", "1",
            "--interval", "0.01",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rounds"] == 10
        assert report["convergence"]["verdict"] == "ok"

    def test_follow_bad_json_line_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main([
            "trace-report", str(bad), "--follow", "--frames", "1",
        ]) == 2
        assert "invalid trace" in capsys.readouterr().err


class TestTop:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_top_from_trace(self, trace_path, capsys):
        assert main(["top", "--trace", trace_path, "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "repro-lb top" in out
        assert "Phi" in out

    def test_top_unreachable_endpoint_still_renders(self, capsys):
        assert main([
            "top", "--connect", "127.0.0.1:9", "--frames", "1", "--no-clear",
        ]) == 0
        assert "unreachable" in capsys.readouterr().out
