"""Satellite acceptance: a SIGKILLed worker's entry disappears from the
``/status`` roster within the eviction window.

The dispatcher registers a live ``job`` provider on the status board;
the metrics server ages each ``workers_live`` entry by its reported
heartbeat silence. A killed worker therefore transits fresh -> stale ->
evicted with no bookkeeping beyond the dispatcher's own death handling
(which pops the handle from its state map as soon as the heartbeat
monitor fires).
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.distributed.dispatcher import dispatch_sharded
from repro.distributed.worker import launch_worker_process
from repro.graphs.generators import torus_2d
from repro.observability.server import get_status_board, start_metrics_server
from repro.simulation.stopping import MaxRounds


@pytest.fixture(autouse=True)
def _clean_board():
    yield
    get_status_board().clear()


def _reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        proc.wait(timeout=10)


def _status(url: str) -> dict:
    with urllib.request.urlopen(url + "/status", timeout=5) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _roster(url: str) -> dict:
    job = _status(url).get("job")
    if not isinstance(job, dict):
        return {}
    live = job.get("workers_live")
    return live if isinstance(live, dict) else {}


def _wait_until(pred, deadline: float, interval: float = 0.1):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        value = pred()
        if value:
            return value
        time.sleep(interval)
    return pred()


class TestStatusAgeOut:
    def test_sigkilled_worker_ages_out_of_roster(self):
        procs, addrs = [], []
        for _ in range(2):
            proc, addr = launch_worker_process(extra_args=("--timeout", "60"))
            procs.append(proc)
            addrs.append(addr)
        server = start_metrics_server(
            "127.0.0.1:0", stale_after=0.5, evict_after=2.0)
        result: dict = {}

        def job():
            topo = torus_2d(48, 48)
            loads = np.random.default_rng(11).uniform(0.0, 10_000.0, topo.n)
            try:
                trace, stats = dispatch_sharded(
                    DiffusionBalancer(topo), loads, addrs,
                    shards=4, seed=0, replicas=4,
                    stopping=[MaxRounds(30_000)],
                    heartbeat=0.2, stats_interval=0.1, timeout=120.0,
                )
                result["trace"], result["stats"] = trace, stats
            except Exception as exc:  # noqa: BLE001 — surfaced in asserts
                result["error"] = exc

        runner = threading.Thread(target=job, daemon=True)
        runner.start()
        try:
            # Both workers must show up live in the roster first.
            def full_roster():
                roster = _roster(server.url)
                return roster if len(roster) == 2 else None

            roster = _wait_until(full_roster, deadline=30.0)
            assert roster is not None and set(roster) == set(addrs), roster

            procs[0].kill()
            victim = addrs[0]

            # The victim's entry must leave the aged roster: either the
            # dispatcher popped it on heartbeat loss, or the eviction
            # window (2s) swallowed its growing silence.
            gone = _wait_until(
                lambda: victim not in _roster(server.url), deadline=30.0)
            assert gone, f"{victim} still in roster: {_roster(server.url)}"
        finally:
            runner.join(timeout=120)
            server.stop()
            _reap(*procs)
        assert not runner.is_alive(), "dispatch never finished"
        assert "error" not in result, result.get("error")
        # The survivor absorbed the re-queued shards and finished the job.
        assert result["stats"]["requeued_shards"] >= 1
        assert result["trace"].final_loads.shape == (4, 48 * 48)
