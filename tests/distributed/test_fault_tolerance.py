"""Process-level fault-tolerance tests: real workers, real signals.

These are the acceptance scenarios for elastic dispatch:

* authenticated rendezvous — matching keys give full parity, wrong or
  missing keys are rejected with a diagnostic ``DispatcherError`` and
  the worker keeps serving;
* heartbeat liveness — a SIGSTOPped worker is detected in bounded time
  (< 3x the heartbeat interval of observed silence), while an idle but
  beating worker is never flagged;
* retry/re-queue — SIGKILLing one of three shard workers mid-sweep
  re-queues its in-flight shards onto survivors and the merged trace
  stays bit-for-bit identical to the serial ensemble; a partitioned run
  with round-boundary checkpoints re-places the dead worker's blocks
  and replays to the exact serial result;
* failure timing windows — SIGKILL during rendezvous or mid-job
  surfaces as a clean, bounded ``DispatcherError``, never a hang.
  (Mid-frame truncation per transport is covered by test_faults.py.)
"""

import signal
import threading
import time

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.distributed.dispatcher import (
    DispatcherError,
    HeartbeatLost,
    close_workers,
    connect_workers,
    dispatch_partitioned,
    dispatch_sharded,
)
from repro.distributed.worker import launch_worker_process
from repro.graphs.generators import torus_2d
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.stopping import MaxRounds

KEY = "s3cret-rendezvous"


def spawn_worker(*extra):
    return launch_worker_process(extra_args=("--timeout", "60", *extra))


def _reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        proc.wait(timeout=10)


def _kill_after(proc, delay):
    """SIGKILL ``proc`` after ``delay`` seconds; returns the Timer."""
    t = threading.Timer(delay, proc.kill)
    t.start()
    return t


class TestAuthenticatedRendezvous:
    @pytest.fixture(scope="class")
    def keyed_worker(self):
        proc, addr = spawn_worker("--authkey", KEY)
        yield addr
        _reap(proc)

    def test_matching_keys_full_parity(self, keyed_worker):
        topo = torus_2d(6, 6)
        loads = np.random.default_rng(5).uniform(0.0, 10_000.0, topo.n)
        ref = EnsembleSimulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(20)], serial_singleton=False
        ).run(loads.copy(), seed=0, replicas=4)
        trace, stats = dispatch_sharded(
            DiffusionBalancer(topo), loads.copy(), [keyed_worker],
            shards=2, seed=0, replicas=4, stopping=[MaxRounds(20)],
            authkey=KEY,
        )
        assert np.array_equal(ref.final_loads, trace.final_loads)
        assert stats["auth"] is True

    def test_wrong_key_rejected_and_worker_survives(self, keyed_worker):
        with pytest.raises(DispatcherError, match="authentication failed"):
            connect_workers([keyed_worker], timeout=10.0, authkey="not-the-key")
        # The worker shrugged off the impostor and still serves.
        handles = connect_workers([keyed_worker], timeout=10.0, authkey=KEY)
        close_workers(handles)

    def test_missing_key_rejected_with_diagnostic(self, keyed_worker):
        with pytest.raises(DispatcherError, match="requires an authkey"):
            connect_workers([keyed_worker], timeout=10.0)
        handles = connect_workers([keyed_worker], timeout=10.0, authkey=KEY)
        close_workers(handles)

    def test_keyed_dispatcher_rejects_keyless_worker(self):
        proc, addr = spawn_worker()
        try:
            with pytest.raises(DispatcherError, match="no authkey"):
                connect_workers([addr], timeout=10.0, authkey=KEY)
            # Keyless rendezvous still works afterwards.
            handles = connect_workers([addr], timeout=10.0)
            close_workers(handles)
        finally:
            _reap(proc)

    def test_signed_peer_links_partitioned_parity(self):
        """Two keyed workers build an HMAC-signed block mesh; the run is
        still bit-for-bit with the serial engine."""
        procs, addrs = [], []
        for _ in range(2):
            proc, addr = spawn_worker("--authkey", KEY)
            procs.append(proc)
            addrs.append(addr)
        try:
            topo = torus_2d(6, 6)
            loads = np.random.default_rng(5).integers(0, 10_000, topo.n).astype(np.int64)
            serial = Simulator(
                DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(30)]
            ).run(loads.copy(), 0)
            trace, stats = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"), loads.copy(), addrs,
                partitions=2, stopping=[MaxRounds(30)], authkey=KEY,
            )
            assert np.array_equal(
                np.asarray(serial._last_loads, dtype=np.int64), trace.final_loads[0]
            )
            assert stats["auth"] is True
        finally:
            _reap(*procs)


class TestHeartbeatLiveness:
    HB = 0.5

    def test_sigstopped_worker_detected_within_three_intervals(self):
        proc, addr = spawn_worker()
        try:
            handles = connect_workers([addr], timeout=10.0, heartbeat=self.HB)
            h = handles[0]
            time.sleep(2.5 * self.HB)  # beats accumulate while we ignore them
            proc.send_signal(signal.SIGSTOP)
            start = time.monotonic()
            with pytest.raises(HeartbeatLost):
                h.recv(timeout=10.0)
            # Queued pre-stop beats drain instantly; detection then fires
            # after the miss budget (2 intervals) of true silence.
            assert time.monotonic() - start < 3 * self.HB
            proc.send_signal(signal.SIGCONT)
            close_workers(handles)
        finally:
            _reap(proc)

    def test_idle_beating_worker_is_never_flagged(self):
        """last_seen only refreshes when frames are read, so a dispatcher
        that ignores the channel far longer than the miss budget must not
        misread the queued (stale) beats as death."""
        proc, addr = spawn_worker()
        try:
            handles = connect_workers([addr], timeout=10.0, heartbeat=0.2)
            h = handles[0]
            time.sleep(1.5)  # ~7 intervals of unread beats
            assert h.try_recv(0.05) is None  # drains beats, no HeartbeatLost
            # And the handle still runs a real job.
            topo = torus_2d(4, 4)
            loads = np.random.default_rng(3).uniform(0.0, 100.0, topo.n)
            trace, stats = dispatch_sharded(
                DiffusionBalancer(topo), loads.copy(), handles,
                shards=2, seed=0, replicas=2, stopping=[MaxRounds(10)],
            )
            assert stats["heartbeat"] == 0.2
            close_workers(handles)
        finally:
            _reap(proc)


class TestShardedRequeue:
    def test_kill_one_of_three_workers_mid_sweep(self):
        """The acceptance chaos test: SIGKILL one of three workers while
        its shards are in flight.  The dispatcher re-queues them onto the
        survivors and the merged trace is bit-for-bit the serial one."""
        procs, addrs = [], []
        for _ in range(3):
            proc, addr = spawn_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            topo = torus_2d(48, 48)
            loads = np.random.default_rng(5).uniform(0.0, 10_000.0, topo.n)
            B, K, R = 6, 6, 15_000  # ~0.8 s per shard: a wide kill window
            ref = EnsembleSimulator(
                DiffusionBalancer(topo), stopping=[MaxRounds(R)], serial_singleton=False
            ).run(loads.copy(), seed=0, replicas=B)
            killer = _kill_after(procs[0], 0.4)
            start = time.monotonic()
            try:
                trace, stats = dispatch_sharded(
                    DiffusionBalancer(topo), loads.copy(), addrs,
                    shards=K, seed=0, replicas=B, stopping=[MaxRounds(R)],
                    timeout=120.0,
                )
            finally:
                killer.cancel()
            assert time.monotonic() - start < 120.0
            assert np.array_equal(ref.final_loads, trace.final_loads)
            assert trace.replicas == B
            assert stats["retries"] >= 1
            assert stats["requeued_shards"] >= 1
            # Only survivors appear in the completion map.
            assert addrs[0] not in stats["shards_by_worker"]
            assert sum(len(v) for v in stats["shards_by_worker"].values()) == K
        finally:
            _reap(*procs)

    def test_all_workers_lost_is_a_clean_bounded_error(self):
        proc, addr = spawn_worker()
        try:
            topo = torus_2d(48, 48)
            loads = np.random.default_rng(5).uniform(0.0, 10_000.0, topo.n)
            killer = _kill_after(proc, 0.4)
            start = time.monotonic()
            try:
                with pytest.raises(DispatcherError, match="all workers lost|retry budget"):
                    dispatch_sharded(
                        DiffusionBalancer(topo), loads.copy(), [addr],
                        shards=2, seed=0, replicas=2,
                        stopping=[MaxRounds(15_000)], timeout=60.0,
                    )
            finally:
                killer.cancel()
            assert time.monotonic() - start < 60.0, "death must not hang the loop"
        finally:
            _reap(proc)


class TestPartitionedCheckpointRecovery:
    def test_kill_one_block_worker_recovers_from_checkpoint(self):
        """checkpoint_every snapshots at round boundaries; killing a block
        worker mid-run re-places its blocks on the survivor, replays from
        the last checkpoint, and the final loads match the serial engine
        exactly."""
        procs, addrs = [], []
        for _ in range(2):
            proc, addr = spawn_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            topo = torus_2d(16, 16)
            loads = np.random.default_rng(5).integers(0, 10_000, topo.n).astype(np.int64)
            R = 20_000
            serial = Simulator(
                DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(R)]
            ).run(loads.copy(), 0)
            killer = _kill_after(procs[1], 1.0)
            start = time.monotonic()
            try:
                trace, stats = dispatch_partitioned(
                    DiffusionBalancer(topo, mode="discrete"), loads.copy(), addrs,
                    partitions=2, stopping=[MaxRounds(R)],
                    checkpoint_every=2_000, timeout=120.0,
                )
            finally:
                killer.cancel()
            assert time.monotonic() - start < 120.0
            assert np.array_equal(
                np.asarray(serial._last_loads, dtype=np.int64), trace.final_loads[0]
            )
            assert stats["rounds"] == R
            assert stats["retries"] >= 1
            assert stats["requeued_blocks"] >= 1
            assert stats["checkpoint_every"] == 2_000
        finally:
            _reap(*procs)


class TestFailureTimingWindows:
    def test_sigkill_during_rendezvous_is_bounded(self):
        proc, addr = spawn_worker()
        proc.kill()
        proc.wait(timeout=10)
        start = time.monotonic()
        with pytest.raises(DispatcherError, match="cannot reach"):
            connect_workers([addr], timeout=5.0)
        assert time.monotonic() - start < 20.0

    def test_sigkill_mid_job_without_retry_aborts_cleanly(self):
        """Partitioned dispatch *without* checkpoints keeps the PR-6
        abort contract: a clean DispatcherError naming the dead worker,
        never a hang."""
        procs, addrs = [], []
        for _ in range(2):
            proc, addr = spawn_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            topo = torus_2d(16, 16)
            loads = np.random.default_rng(5).integers(0, 10_000, topo.n).astype(np.int64)
            killer = _kill_after(procs[0], 1.0)
            start = time.monotonic()
            try:
                with pytest.raises(DispatcherError, match="died|failed"):
                    dispatch_partitioned(
                        DiffusionBalancer(topo, mode="discrete"), loads.copy(), addrs,
                        partitions=2, stopping=[MaxRounds(20_000)], timeout=60.0,
                    )
            finally:
                killer.cancel()
            assert time.monotonic() - start < 60.0
        finally:
            _reap(*procs)
