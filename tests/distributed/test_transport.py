"""Unit tests for the transport seam: framing, accounting, protocol."""

import threading
import time

import numpy as np
import pytest

import repro.distributed.transport as transport
from repro.distributed.transport import (
    PROTOCOL_VERSION,
    ChannelClosed,
    TcpListener,
    TransportError,
    TransportTimeout,
    available_transports,
    encode_frame,
    format_address,
    have_mpi,
    loopback_pair,
    make_pair,
    parse_address,
    tcp_connect,
    tcp_pair,
)

#: transports whose pair() endpoints both live in this process (mp-pipe
#: pairs do too until a Process inherits one end; mpi self-pairs join
#: whenever mpi4py is importable).
ALL_PAIRS = list(available_transports())


@pytest.fixture(params=ALL_PAIRS, ids=ALL_PAIRS)
def pair(request):
    a, b = make_pair(request.param)
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip_objects(self, pair):
        a, b = pair
        payloads = [
            ("hello", PROTOCOL_VERSION),
            {"k": np.arange(7), "nested": [1, 2.5, None]},
            np.random.default_rng(0).integers(0, 100, (16, 3)),
        ]
        for obj in payloads:
            a.send(obj)
        for obj in payloads:
            got = b.recv(timeout=10.0)
            if isinstance(obj, np.ndarray):
                assert np.array_equal(obj, got) and got.dtype == obj.dtype
            elif isinstance(obj, dict):
                assert np.array_equal(got["k"], obj["k"])
                assert got["nested"] == obj["nested"]
            else:
                assert got == obj

    def test_large_frame_exact(self, pair):
        """Frames far beyond one socket buffer arrive intact and ordered."""
        a, b = pair
        big = np.random.default_rng(1).standard_normal((512, 300))  # ~1.2 MB
        recv_box = {}

        def reader():
            recv_box["big"] = b.recv(timeout=30.0)
            recv_box["tail"] = b.recv(timeout=30.0)

        t = threading.Thread(target=reader)
        t.start()
        a.send(big)
        a.send("tail")
        t.join(timeout=30)
        assert not t.is_alive()
        assert np.array_equal(recv_box["big"], big)
        assert recv_box["tail"] == "tail"

    def test_byte_counters_symmetric(self, pair):
        a, b = pair
        n = a.send({"x": np.arange(100)})
        assert n > 0 and a.bytes_sent == n and a.messages_sent == 1
        b.recv(timeout=10.0)
        assert b.bytes_received == n and b.messages_received == 1
        # Counters are the logical frame bytes (length prefix + header +
        # metadata + out-of-band buffers) of the same transport-
        # independent encoding on every backend, so bench rows are
        # comparable across wires.
        assert n == encode_frame({"x": np.arange(100)}).nbytes

    def test_large_buffers_leave_the_pickle_stream(self):
        """Slab-sized arrays ride out-of-band; small ones stay in-band."""
        slab = np.arange(131072, dtype=np.float64)
        frame = encode_frame({"slab": slab, "tiny": np.arange(4)})
        assert len(frame.buffers) == 1
        assert frame.buffers[0].nbytes == slab.nbytes
        assert len(frame.meta) < slab.nbytes // 100  # slab bytes not re-pickled
        assert encode_frame(np.arange(4)).buffers == []

    def test_timeout_raises(self, pair):
        a, b = pair
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.05)

    def test_closed_peer_raises(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)


class TestPairwiseProtocol:
    """The lower-id-sends-first halo exchange over every transport."""

    @pytest.mark.parametrize("transport", ALL_PAIRS)
    def test_two_party_exchange(self, transport):
        a, b = make_pair(transport)

        def side(channel, my_id, peer_id, value, out):
            if my_id < peer_id:
                channel.send(value)
                out.append(channel.recv(timeout=10.0))
            else:
                got = channel.recv(timeout=10.0)
                channel.send(value)
                out.append(got)

        out_a, out_b = [], []
        ta = threading.Thread(target=side, args=(a, 0, 1, "from-0", out_a))
        tb = threading.Thread(target=side, args=(b, 1, 0, "from-1", out_b))
        ta.start(), tb.start()
        ta.join(timeout=10), tb.join(timeout=10)
        assert out_a == ["from-1"] and out_b == ["from-0"]
        a.close(), b.close()

    def test_single_threaded_loopback_protocol(self):
        """Loopback sends never block, so the pairwise order is runnable
        from one thread — the determinism the protocol tests rely on."""
        a, b = loopback_pair()
        a.send(np.arange(3))  # block 0 (lower id) sends first
        got_b = b.recv(timeout=1.0)
        b.send(np.arange(3) * 10)
        got_a = a.recv(timeout=1.0)
        assert np.array_equal(got_b, np.arange(3))
        assert np.array_equal(got_a, np.arange(3) * 10)


class TestTcpSpecifics:
    def test_listener_ephemeral_port_and_accept_timeout(self):
        with TcpListener("127.0.0.1", 0) as listener:
            host, port = listener.address
            assert host == "127.0.0.1" and port > 0
            with pytest.raises(TransportTimeout):
                listener.accept(timeout=0.05)

    def test_connect_refused_gives_transport_error(self):
        with TcpListener("127.0.0.1", 0) as listener:
            dead = listener.address
        with pytest.raises(TransportError, match="cannot connect"):
            tcp_connect(dead, retries=1, retry_delay=0.01)

    def test_connect_retries_until_listener_appears(self):
        """Worker/dispatcher startup races are absorbed by connect retries."""
        listener_box = {}

        def late_listener():
            time.sleep(0.3)
            listener_box["l"] = TcpListener("127.0.0.1", port_box[0])

        # Reserve a port, close it, then race a late re-bind against connect.
        probe = TcpListener("127.0.0.1", 0)
        port_box = [probe.address[1]]
        probe.close()
        t = threading.Thread(target=late_listener)
        t.start()
        ch = tcp_connect(("127.0.0.1", port_box[0]), retries=40, retry_delay=0.05)
        t.join()
        server = listener_box["l"].accept(timeout=5.0)
        ch.send("late")
        assert server.recv(timeout=5.0) == "late"
        ch.close(), server.close(), listener_box["l"].close()

    def test_socket_options_applied(self):
        a, b = tcp_pair(nodelay=True, buffer_size=65536)
        a.send(np.arange(10))
        assert np.array_equal(b.recv(timeout=5.0), np.arange(10))
        a.close(), b.close()


class TestAddresses:
    def test_parse_variants(self):
        assert parse_address("10.0.0.1:7001") == ("10.0.0.1", 7001)
        assert parse_address(":7001") == ("127.0.0.1", 7001)
        assert parse_address("7001") == ("127.0.0.1", 7001)
        assert format_address(("h", 5)) == "h:5"

    @pytest.mark.parametrize("bad", ["host:notaport", "host:", "a:b:c:d", "1:99999"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_pair("smoke-signals")
        assert set(ALL_PAIRS) == set(available_transports())
        assert set(transport.TRANSPORTS) <= set(ALL_PAIRS)

    def test_mpi_transport_gated_on_mpi4py(self):
        assert ("mpi" in available_transports()) == have_mpi()
        if not have_mpi():
            with pytest.raises(TransportError, match="requires mpi4py"):
                make_pair("mpi")

    def test_transport_option_validation(self):
        with pytest.raises(ValueError, match="no options"):
            make_pair("loopback", nodelay=True)


class TestChunking:
    """Forced chunking: a tiny MAX_CHUNK_BYTES must change the wire
    geometry (many chunk messages per frame) but nothing observable."""

    @pytest.fixture(autouse=True)
    def tiny_chunks(self, monkeypatch):
        monkeypatch.setattr(transport, "MAX_CHUNK_BYTES", 64)

    def test_chunk_size_recorded_in_header(self):
        frame = encode_frame(np.arange(8192, dtype=np.int64))
        assert frame.chunk == 64
        # > 1000 chunks for the 64 KiB buffer at 64 B per chunk.
        assert frame.buffers[0].nbytes // frame.chunk > 1000

    @pytest.mark.parametrize("t", ALL_PAIRS)
    def test_multi_chunk_reassembly(self, t):
        a, b = make_pair(t)
        rng = np.random.default_rng(7)
        payload = {
            "slab": rng.integers(-1000, 1000, (321, 17)),
            "floats": rng.standard_normal(4099),
            "blob": bytes(rng.integers(0, 256, 10_001, dtype=np.uint8)),
            "small": list(range(40)),
        }
        box = {}
        reader = threading.Thread(target=lambda: box.update(got=b.recv(timeout=30.0)))
        reader.start()
        n = a.send(payload)
        reader.join(timeout=30)
        assert not reader.is_alive()
        got = box["got"]
        assert np.array_equal(got["slab"], payload["slab"])
        assert np.array_equal(got["floats"], payload["floats"])
        assert got["blob"] == payload["blob"] and got["small"] == payload["small"]
        assert a.bytes_sent == b.bytes_received == n
        a.close(), b.close()

    def test_chunked_totals_match_unchunked(self, monkeypatch):
        """The chunk limit changes wire geometry, never the byte totals."""
        payload = {"slab": np.arange(5000, dtype=np.float64)}
        tiny = encode_frame(payload).nbytes
        monkeypatch.setattr(transport, "MAX_CHUNK_BYTES", 64 * 1024 * 1024)
        assert tiny == encode_frame(payload).nbytes

    def test_sender_chunk_size_wins(self):
        """Receivers follow the header's chunk size, so peers patched to
        different limits still interoperate (as forked workers might be)."""
        a, b = make_pair("mp-pipe")
        # Small enough that its ~36 chunk messages fit the pipe buffer
        # (per-message skb overhead makes tiny chunks expensive), so the
        # single-threaded send cannot block.
        payload = np.arange(256, dtype=np.int64)
        n = a.send(payload)
        transport.MAX_CHUNK_BYTES = 1 << 20  # receiver-side value differs
        got = b.recv(timeout=10.0)
        assert np.array_equal(got, payload) and b.bytes_received == n
        a.close(), b.close()


class TestNonblockingPrimitives:
    """send_nowait / poll / flush / recv_into across every transport."""

    def test_send_nowait_poll_recv(self, pair):
        a, b = pair
        assert not b.poll(0.0)
        n = a.send_nowait(("tag", np.arange(32)))
        a.flush(5.0)
        assert n > 0 and a.bytes_sent == n and a.messages_sent == 1
        assert b.poll(5.0)
        tag, arr = b.recv(timeout=5.0)
        assert tag == "tag" and np.array_equal(arr, np.arange(32))
        assert b.bytes_received == n
        assert not b.poll(0.0)

    def test_send_nowait_books_bytes_immediately(self, pair):
        """Byte accounting is per logical frame at enqueue time, so the
        per-link counters are identical whether or not the kernel has
        accepted the bytes yet — and identical across transports."""
        a, _ = pair
        n = a.send_nowait(np.arange(64, dtype=np.int64))
        assert a.bytes_sent == n == encode_frame(np.arange(64, dtype=np.int64)).nbytes

    def test_flush_with_concurrent_reader_drains_large_backlog(self, pair):
        """A payload far beyond any kernel buffer fully drains through
        flush while the peer reads it."""
        a, b = pair
        big = np.random.default_rng(3).standard_normal((800, 1024))  # ~6.5 MB
        box = {}
        t = threading.Thread(target=lambda: box.update(got=b.recv(timeout=30.0)))
        t.start()
        a.send_nowait(("big", big))
        a.flush(30.0)
        t.join(timeout=30)
        assert not t.is_alive()
        assert np.array_equal(box["got"][1], big)

    def test_head_to_head_send_nowait_never_deadlocks(self, pair):
        """Both sides post a slab-sized send before either receives —
        the overlap round's wire pattern.  Receive paths pump the
        outbound backlog, so the pattern cannot wedge."""
        a, b = pair
        big = np.arange(1_500_000, dtype=np.float64)  # 12 MB each way
        res = {}

        def side(ch, label):
            ch.send_nowait((label, big))
            res[label] = ch.recv(timeout=30.0)
            ch.flush(30.0)

        ta = threading.Thread(target=side, args=(a, "a"))
        tb = threading.Thread(target=side, args=(b, "b"))
        ta.start(), tb.start()
        ta.join(timeout=30), tb.join(timeout=30)
        assert not ta.is_alive() and not tb.is_alive(), "head-to-head wedged"
        assert res["a"][0] == "b" and np.array_equal(res["a"][1], big)
        assert res["b"][0] == "a" and np.array_equal(res["b"][1], big)
        assert a.bytes_sent == b.bytes_received == b.bytes_sent == a.bytes_received

    def test_recv_into_lands_buffer_in_target(self, pair):
        a, b = pair
        payload = np.random.default_rng(4).standard_normal((64, 128))
        out = np.zeros_like(payload)
        box = {}
        t = threading.Thread(
            target=lambda: box.update(got=b.recv_into(out, timeout=10.0)))
        t.start()
        a.send_nowait(("dense", payload))
        a.flush(10.0)
        t.join(timeout=10)
        assert not t.is_alive()
        tag, arr = box["got"]
        assert tag == "dense" and np.array_equal(arr, payload)
        if a.transport in ("mp-pipe", "tcp"):
            # Zero-copy landing: the decoded array aliases the target.
            assert np.shares_memory(arr, out)
            assert np.array_equal(out, payload)

    def test_recv_into_mismatched_size_falls_back(self, pair):
        """A target whose size does not match the inbound buffer is
        ignored — the frame still decodes into fresh memory."""
        a, b = pair
        payload = np.arange(4096, dtype=np.float64)
        out = np.zeros(7)  # wrong size
        a.send_nowait(payload)
        a.flush(5.0)
        got = b.recv_into(out, timeout=5.0)
        assert np.array_equal(got, payload)
        assert not np.shares_memory(got, out)

    def test_zero_row_frame_roundtrip(self, pair):
        """Degenerate halo payload: an empty (0, B) slab crosses every
        transport as a well-formed frame with equal byte accounting."""
        a, b = pair
        empty = np.empty((0, 8), dtype=np.int64)
        n = a.send_nowait(("dense", empty))
        a.flush(5.0)
        tag, arr = b.recv(timeout=5.0)
        assert tag == "dense" and arr.shape == (0, 8) and arr.dtype == np.int64
        assert n == encode_frame(("dense", empty)).nbytes
        assert b.bytes_received == n

    def test_flush_is_noop_when_backlog_empty(self, pair):
        a, _ = pair
        a.flush(0.1)  # nothing pending: returns immediately

    def test_poll_timeout_expires_cleanly(self, pair):
        _, b = pair
        t0 = time.monotonic()
        assert not b.poll(0.15)
        assert time.monotonic() - t0 < 5.0
