"""Chaos suite: deterministic fault injection on the transport seam.

Every scenario runs through :class:`FaultyChannel` wrapping a real
channel pair, per transport, from a seeded :class:`FaultSchedule` — so a
failing run replays exactly.  The invariant under test is the
fault-tolerance contract: an injected fault surfaces as a *clean,
bounded-time* error (``ChannelClosed``/``TransportError``) on whichever
side observes it, never a hang and never silently corrupt data.
"""

import threading
import time

import numpy as np
import pytest

from repro.distributed.faults import FaultSchedule, FaultyChannel, faulty_pair
from repro.distributed.transport import (
    ChannelClosed,
    TransportError,
    make_pair,
)

# The in-process pair-capable transports (mpi needs mpiexec; its wire
# path shares the Channel seam these schedules exercise).
TRANSPORTS = ["loopback", "mp-pipe", "tcp"]

#: No individual chaos wait may exceed this (the "never a hang" bound).
BOUND_S = 30.0


def _close(*channels):
    for ch in channels:
        ch.close()


class TestFaultSchedule:
    def test_same_seed_same_plan(self):
        plans = []
        for _ in range(2):
            sched = FaultSchedule(seed=7, delay_prob=0.5, max_delay=0.01,
                                  kill_after=25)
            plans.append([sched.next_send() for _ in range(30)])
        assert plans[0] == plans[1]

    def test_different_seeds_differ(self):
        def plan(seed):
            sched = FaultSchedule(seed=seed, delay_prob=0.5)
            return [sched.next_send() for _ in range(50)]

        assert plan(1) != plan(2)

    def test_terminal_fault_precedence_and_ordinals(self):
        sched = FaultSchedule(drop_after=2)
        assert [sched.next_send()[0] for _ in range(3)] == ["ok", "ok", "drop"]
        sched = FaultSchedule(kill_after=1)
        assert [sched.next_send()[0] for _ in range(2)] == ["ok", "kill"]
        # When two terminal faults are both due, drop outranks kill.
        sched = FaultSchedule(drop_after=0, kill_after=0)
        assert sched.next_send()[0] == "drop"

    def test_clean_schedule_is_all_ok(self):
        sched = FaultSchedule(seed=3)
        assert all(sched.next_send() == ("ok", 0.0) for _ in range(100))


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestFaultyChannelPerTransport:
    def test_delay_only_schedule_preserves_payloads_and_counters(self, transport):
        """Seeded delays perturb timing but not content or accounting."""
        a, b = faulty_pair(
            transport,
            schedule_a=FaultSchedule(seed=11, delay_prob=0.8, max_delay=0.001),
        )
        clean_a, clean_b = make_pair(transport)
        try:
            payloads = [
                ("msg", i, np.arange(i * 7, dtype=np.float64)) for i in range(12)
            ]
            for obj in payloads:
                a.send(obj)
                clean_a.send(obj)
            for obj in payloads:
                got = b.recv(BOUND_S)
                ref = clean_b.recv(BOUND_S)
                assert got[:2] == obj[:2]
                assert np.array_equal(got[2], obj[2])
                assert np.array_equal(ref[2], got[2])
            assert a.bytes_sent == clean_a.bytes_sent
            assert a.messages_sent == clean_a.messages_sent
        finally:
            _close(a, b, clean_a, clean_b)

    def test_drop_then_close_surfaces_as_eof_not_a_gap(self, transport):
        """The peer of a dropping sender sees the pre-drop messages, then
        EOF — exactly what a crashed sender looks like on a real socket."""
        a, b = faulty_pair(transport, schedule_a=FaultSchedule(drop_after=3))
        try:
            for i in range(4):
                a.send(("m", i))  # the 4th is silently dropped
            for i in range(3):
                assert b.recv(BOUND_S) == ("m", i)
            start = time.monotonic()
            with pytest.raises(ChannelClosed):
                b.recv(BOUND_S)
            assert time.monotonic() - start < BOUND_S
            # The dropping side is dead for further traffic.
            with pytest.raises(ChannelClosed):
                a.send(("m", 99))
        finally:
            _close(a, b)

    def test_truncated_frame_is_a_clean_error_never_a_hang(self, transport):
        """A frame whose header promises more bytes than follow must
        surface as ChannelClosed or a decode TransportError, promptly."""
        a, b = faulty_pair(transport, schedule_a=FaultSchedule(truncate_after=1))
        try:
            a.send(("intact", np.ones(64)))
            got = b.recv(BOUND_S)
            assert got[0] == "intact"
            with pytest.raises(ChannelClosed):
                # Truncation also closes the sender (one-shot fault).
                a.send(("garbled", np.zeros(256)))
                a.send(("after",))
            start = time.monotonic()
            with pytest.raises(TransportError):  # ChannelClosed is a subclass
                b.recv(BOUND_S)
                b.recv(BOUND_S)
            assert time.monotonic() - start < BOUND_S
        finally:
            _close(a, b)

    def test_kill_after_k_delivers_exactly_k(self, transport):
        K = 5
        a, b = faulty_pair(transport, schedule_a=FaultSchedule(kill_after=K))
        try:
            delivered = []

            def reader():
                while True:
                    try:
                        delivered.append(b.recv(BOUND_S))
                    except TransportError:
                        return

            t = threading.Thread(target=reader)
            t.start()
            sent = 0
            with pytest.raises(ChannelClosed):
                for i in range(K + 1):
                    a.send(("m", i))
                    sent += 1
            assert sent == K
            t.join(timeout=BOUND_S)
            assert not t.is_alive(), "reader hung after kill"
            assert delivered == [("m", i) for i in range(K)]
        finally:
            _close(a, b)

    def test_receives_pass_through_until_killed(self, transport):
        """Faults are send-side; the wrapped end still receives cleanly,
        and a killed channel refuses further receives immediately."""
        a, b = faulty_pair(transport, schedule_b=FaultSchedule(kill_after=0))
        try:
            a.send(("inbound", 1))
            assert b.recv(BOUND_S) == ("inbound", 1)
            with pytest.raises(ChannelClosed):
                b.send(("outbound", 2))
            with pytest.raises(ChannelClosed):
                b.recv(0.1)
        finally:
            _close(a, b)


class TestFaultyChannelWrapper:
    def test_wraps_any_end_selectively(self):
        a, b = faulty_pair("loopback", schedule_b=FaultSchedule(kill_after=2))
        try:
            assert not isinstance(a, FaultyChannel)
            assert isinstance(b, FaultyChannel)
            assert b.transport == "faulty"
        finally:
            _close(a, b)

    def test_traffic_delegates_to_inner(self):
        a, b = faulty_pair("loopback", schedule_a=FaultSchedule())
        try:
            a.send(("x", 1))
            b.recv(BOUND_S)
            assert a.traffic() == a.inner.traffic()
            assert a.bytes_sent == a.inner.bytes_sent > 0
        finally:
            _close(a, b)
