"""End-to-end dispatcher tests: real ``repro-lb worker`` subprocesses.

The acceptance property: partitioned and sharded runs dispatched over
the ``tcp`` transport to 2+ workers on loopback produce load
trajectories **bit-for-bit identical** to the serial
:class:`Simulator` / :class:`EnsembleSimulator`, across schemes,
P ∈ {2, 4} and K ∈ {2, 4}; and a worker dying mid-run aborts the
dispatch cleanly — nonzero/diagnostic, never a hang.
"""

import signal
import threading
import time

import numpy as np
import pytest

from repro.baselines.first_order import FirstOrderBalancer
from repro.core.diffusion import DiffusionBalancer
from repro.distributed.dispatcher import (
    DispatcherError,
    close_workers,
    connect_workers,
    dispatch_partitioned,
    dispatch_sharded,
)
from repro.distributed.transport import PROTOCOL_VERSION, parse_address, tcp_connect
from repro.distributed.worker import launch_worker_process
from repro.graphs.dynamic import EdgeSamplingDynamics
from repro.graphs.generators import torus_2d
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow

ROUNDS = 20


def spawn_worker():
    """Launch ``repro-lb worker`` on an ephemeral port; returns (proc, addr)."""
    return launch_worker_process(extra_args=("--timeout", "60"))


@pytest.fixture(scope="module")
def workers():
    """Two long-lived worker processes shared by the parity tests."""
    procs, addrs = [], []
    for _ in range(2):
        proc, addr = spawn_worker()
        procs.append(proc)
        addrs.append(addr)
    yield addrs
    for proc in procs:
        proc.terminate()
    for proc in procs:
        proc.wait(timeout=10)


def _loads(topo, discrete, seed=5):
    rng = np.random.default_rng(seed)
    if discrete:
        return rng.integers(0, 10_000, topo.n).astype(np.int64)
    return rng.uniform(0.0, 10_000.0, topo.n)


def _serial_snapshots(balancer, loads, rounds=ROUNDS):
    trace = Simulator(balancer, stopping=[MaxRounds(rounds)], keep_snapshots=True).run(loads, 0)
    return [np.asarray(s) for s in trace._snapshots]


BALANCER_FACTORIES = [
    ("diffusion-cont", lambda net: DiffusionBalancer(net), False),
    ("diffusion-disc", lambda net: DiffusionBalancer(net, mode="discrete"), True),
    ("fos", lambda net: FirstOrderBalancer(net), False),
]


class TestPartitionedDispatchParity:
    """Remote partitioned runs == serial engine, bit for bit."""

    @pytest.fixture(scope="class")
    def topo(self):
        return torus_2d(6, 6)

    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    @pytest.mark.parametrize("P", [2, 4])
    def test_matches_serial(self, workers, topo, label, factory, discrete, P):
        loads = _loads(topo, discrete)
        expected = _serial_snapshots(factory(topo), loads.copy())
        trace, stats = dispatch_partitioned(
            factory(topo), loads.copy(), workers,
            partitions=P, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        )
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert stats["rounds"] == ROUNDS
        assert stats["blocks"] == P
        assert stats["halo_values"] > 0
        assert stats["halo_bytes"] > 0
        assert sorted(stats["workers"]) == sorted(workers)
        # P=4 over 2 workers: each worker hosts 2 thread-driven blocks.
        hosted = [b for blocks in stats["blocks_by_worker"].values() for b in blocks]
        assert sorted(hosted) == list(range(P))

    def test_dynamic_edge_failures_over_tcp(self, workers):
        """The cut set changes per round; the dispatched pairwise
        protocol must not desync (satellite: dynamic topologies over the
        tcp transport)."""
        base = torus_2d(6, 6)
        loads = _loads(base, discrete=True)
        make = lambda: DiffusionBalancer(EdgeSamplingDynamics(base, p=0.6, seed=9), mode="discrete")
        expected = _serial_snapshots(make(), loads.copy())
        trace, stats = dispatch_partitioned(
            make(), loads.copy(), workers,
            partitions=4, stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        )
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert stats["halo_values"] > 0

    def test_replicas_compose_with_blocks(self, workers):
        """(n_block, B) slabs travel the wire; ensemble parity holds."""
        topo = torus_2d(6, 6)
        B = 4
        rng = np.random.default_rng(11)
        batch = rng.integers(0, 10_000, (B, topo.n)).astype(np.int64)
        make = lambda: DiffusionBalancer(topo, mode="discrete")
        ens = EnsembleSimulator(
            make(), stopping=[MaxRounds(15)], keep_snapshots=True, serial_singleton=False
        ).run(batch.copy(), seed=0)
        trace, _ = dispatch_partitioned(
            make(), batch.copy(), workers,
            partitions=3, stopping=[MaxRounds(15)], keep_snapshots=True,
        )
        assert np.array_equal(ens.final_loads, trace.final_loads)
        for t in range(ens.recorded_states):
            assert np.array_equal(ens.snapshots[t], trace.snapshots[t]), f"round {t}"

    def test_free_running_chunks_final_loads(self, workers):
        """Pure MaxRounds stopping free-runs remote workers; final loads
        still match the serial run exactly."""
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=True)
        serial = Simulator(
            DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(40)]
        ).run(loads.copy(), 0)
        trace, stats = dispatch_partitioned(
            DiffusionBalancer(topo, mode="discrete"), loads.copy(), workers,
            partitions=4, stopping=[MaxRounds(40)],
        )
        assert stats["rounds"] == 40
        assert np.array_equal(
            np.asarray(serial._last_loads, dtype=np.int64), trace.final_loads[0]
        )


class TestShardedDispatchParity:
    """Remote shard runs == local sharded == single-process ensemble."""

    @pytest.mark.parametrize("K", [2, 4])
    def test_matches_ensemble(self, workers, K):
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=False)
        B = 8
        ref = EnsembleSimulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(ROUNDS)], serial_singleton=False
        ).run(loads.copy(), seed=0, replicas=B)
        trace, stats = dispatch_sharded(
            DiffusionBalancer(topo), loads.copy(), workers,
            shards=K, seed=0, replicas=B, stopping=[MaxRounds(ROUNDS)],
        )
        assert np.array_equal(ref.final_loads, trace.final_loads)
        assert trace.replicas == B
        assert stats["shards"] == K
        dealt = [s for shard_ids in stats["shards_by_worker"].values() for s in shard_ids]
        assert sorted(dealt) == list(range(K))

    def test_single_shard_matches_local_unsharded_run_exactly(self, workers):
        """A dispatch handing one worker the whole batch must reproduce
        the local unsharded path bit for bit — statistics included (the
        whole-batch payload keeps the engine's default dispatch)."""
        from repro.simulation.sharding import run_sharded_ensemble

        topo = torus_2d(5, 5)
        loads = _loads(topo, discrete=False)
        local = run_sharded_ensemble(
            DiffusionBalancer(topo), loads.copy(), seed=2, replicas=1, workers=1,
            stopping=[MaxRounds(10)],
        )
        remote, stats = dispatch_sharded(
            DiffusionBalancer(topo), loads.copy(), [workers[0]],
            shards=1, seed=2, replicas=1, stopping=[MaxRounds(10)],
        )
        assert stats["shards"] == 1
        assert np.array_equal(local.final_loads, remote.final_loads)
        assert np.array_equal(local.potentials_matrix, remote.potentials_matrix)

    def test_default_one_shard_per_worker(self, workers):
        topo = torus_2d(4, 4)
        loads = _loads(topo, discrete=True)
        trace, stats = dispatch_sharded(
            DiffusionBalancer(topo, mode="discrete"), loads.copy(), workers,
            seed=0, replicas=4, stopping=[MaxRounds(5)],
        )
        assert stats["shards"] == len(workers)
        assert trace.replicas == 4


class TestRendezvous:
    def test_preconnected_handles_reusable_across_dispatches(self, workers):
        """connect_workers handles survive several dispatch_* calls: a
        dispatcher connection is handshaken once and streams jobs."""
        topo = torus_2d(4, 4)
        loads = _loads(topo, discrete=True)
        handles = connect_workers(workers)
        try:
            _, stats1 = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"), loads, handles,
                partitions=2, stopping=[MaxRounds(5)],
            )
            _, stats2 = dispatch_sharded(
                DiffusionBalancer(topo, mode="discrete"), loads, handles,
                seed=0, replicas=4, stopping=[MaxRounds(5)],
            )
            _, stats3 = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"), loads, handles,
                partitions=2, stopping=[MaxRounds(5)],
            )
            assert stats1["rounds"] == stats3["rounds"] == 5
            assert stats2["shards"] == len(workers)
        finally:
            close_workers(handles)

    def test_connect_workers_info(self, workers):
        handles = connect_workers(workers)
        try:
            for handle in handles:
                assert handle.info["version"] == PROTOCOL_VERSION
                assert handle.peer_address[1] > 0
                assert handle.info["pid"] > 0
        finally:
            close_workers(handles)

    def test_advertise_host_overrides_control_route(self):
        """--advertise fixes mixed-routing clusters: peers dial the
        advertised host, not the one the dispatcher happened to use."""
        proc, addr = launch_worker_process(
            bind="0.0.0.0:0", extra_args=("--advertise", "127.0.0.1")
        )
        try:
            # The announced control host is the wildcard bind; reach it
            # via loopback like a colocated dispatcher would.
            port = addr.rsplit(":", 1)[1]
            handles = connect_workers([f"127.0.0.1:{port}"])
            try:
                assert handles[0].peer_address[0] == "127.0.0.1"
                assert handles[0].info["advertise_host"] == "127.0.0.1"
            finally:
                close_workers(handles)
            # A full dispatch through the wildcard-bound worker works.
            topo = torus_2d(4, 4)
            _, stats = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"),
                _loads(topo, discrete=True), [f"127.0.0.1:{port}"],
                partitions=2, stopping=[MaxRounds(5)],
            )
            assert stats["rounds"] == 5
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_unreachable_worker_fails_fast(self):
        with pytest.raises(DispatcherError, match="cannot reach worker"):
            connect_workers(["127.0.0.1:1"], timeout=2.0)

    def test_malformed_clients_do_not_kill_the_server(self, workers):
        """Raw junk bytes, a truncated hello, and a non-dict job spec
        must each be rejected without taking the server down."""
        import socket as socketlib
        import struct

        host, port = parse_address(workers[0])
        # 1: junk that frames as an unpicklable payload.
        raw = socketlib.create_connection((host, port), timeout=10)
        raw.sendall(struct.pack(">Q", 4) + b"\x00junk"[:4])
        raw.close()
        # 2: a hello tuple with no version field.
        channel = tcp_connect(parse_address(workers[0]))
        channel.send(("hello",))
        reply = channel.recv(timeout=10.0)
        assert reply[0] == "error" and "hello" in reply[1]
        channel.close()
        # 3: a job whose spec is not a dict.
        channel = tcp_connect(parse_address(workers[0]))
        channel.send(("hello", PROTOCOL_VERSION))
        assert channel.recv(timeout=10.0)[0] == "ready"
        channel.send(("job", "not-a-spec"))
        reply = channel.recv(timeout=10.0)
        assert reply[0] == "error"
        channel.close()
        # The server survived all three: a real dispatch still works.
        topo = torus_2d(4, 4)
        _, stats = dispatch_partitioned(
            DiffusionBalancer(topo, mode="discrete"), _loads(topo, discrete=True),
            [workers[0]], partitions=2, stopping=[MaxRounds(3)],
        )
        assert stats["rounds"] == 3

    def test_version_mismatch_refused(self, workers):
        channel = tcp_connect(parse_address(workers[0]))
        try:
            channel.send(("hello", PROTOCOL_VERSION + 999))
            reply = channel.recv(timeout=10.0)
            assert reply[0] == "error" and "version" in reply[1]
        finally:
            channel.close()

    def test_no_workers_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(DispatcherError, match="at least one worker"):
            dispatch_sharded(DiffusionBalancer(topo), np.ones(topo.n), [])

    def test_duplicate_worker_addresses_rejected_upfront(self):
        """A worker serves one dispatcher connection at a time, so a
        duplicated address would block until timeout — reject the
        copy-paste input with a diagnostic instead (no network needed)."""
        with pytest.raises(DispatcherError, match="duplicate worker address"):
            connect_workers(["127.0.0.1:7101", "127.0.0.1:7101"])

    def test_nonpositive_shards_rejected(self, workers):
        topo = torus_2d(4, 4)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            dispatch_sharded(
                DiffusionBalancer(topo), np.ones(topo.n, dtype=np.int64), workers,
                shards=0, replicas=4, stopping=[MaxRounds(2)],
            )

    def test_max_jobs_counts_jobs_not_connections(self):
        """--max-jobs 1: a junk handshake counts zero, the real job
        counts one, and the worker exits after serving it."""
        proc, addr = launch_worker_process(extra_args=("--max-jobs", "1"))
        try:
            bad = tcp_connect(parse_address(addr))
            bad.send("not-a-hello-tuple")
            bad.close()
            topo = torus_2d(4, 4)
            _, stats = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"), _loads(topo, discrete=True),
                [addr], partitions=2, stopping=[MaxRounds(3)],
            )
            assert stats["rounds"] == 3
            assert proc.wait(timeout=15) == 0  # limit reached -> clean exit
        finally:
            proc.terminate()


class TestWorkerFailure:
    def test_worker_death_aborts_cleanly(self):
        """SIGKILL one of two workers mid-run: the dispatcher must raise
        a diagnostic DispatcherError promptly — no hang — and the
        surviving worker must accept the next job."""
        proc1, addr1 = spawn_worker()
        proc2, addr2 = spawn_worker()
        try:
            topo = torus_2d(8, 8)
            loads = _loads(topo, discrete=True, seed=1)
            outcome = {}

            def run():
                try:
                    # A threshold no discrete trajectory reaches: the run
                    # only ends when the dispatch is aborted.
                    dispatch_partitioned(
                        DiffusionBalancer(topo, mode="discrete"), loads, [addr1, addr2],
                        partitions=2,
                        stopping=[PotentialFractionBelow(1e-300), MaxRounds(10_000_000)],
                        timeout=60.0,
                    )
                    outcome["result"] = "completed"
                except DispatcherError as exc:
                    outcome["result"] = f"error: {exc}"

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(1.0)
            proc2.send_signal(signal.SIGKILL)
            thread.join(timeout=30)
            assert not thread.is_alive(), "dispatcher hung after worker death"
            assert outcome["result"].startswith("error:"), outcome
            # Survivor still serves.
            trace, stats = dispatch_partitioned(
                DiffusionBalancer(topo, mode="discrete"), loads, [addr1],
                partitions=2, stopping=[MaxRounds(5)],
            )
            assert stats["rounds"] == 5
        finally:
            proc1.terminate()
            proc2.wait(timeout=10)
            proc1.wait(timeout=10)


class TestDispatchCLI:
    def test_cli_dispatch_partitioned_and_sharded(self, workers, capsys):
        from repro.cli import main

        rc = main([
            "dispatch", "--workers", *workers, "--balancer", "diffusion-discrete",
            "--topology", "torus:6x6", "--rounds", "10", "--partitions", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 block(s)" in out and "halo values" in out and "B/round" in out
        rc = main([
            "dispatch", "--workers", *workers, "--balancer", "diffusion",
            "--topology", "torus:6x6", "--rounds", "10", "--replicas", "4",
            "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 shard(s)" in out

    def test_cli_dispatch_dead_address_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main([
            "dispatch", "--workers", "127.0.0.1:1", "--balancer", "diffusion",
            "--topology", "torus:4x4", "--rounds", "5", "--timeout", "2",
        ])
        assert rc == 1
        assert "dispatch failed" in capsys.readouterr().err

    def test_cli_dispatch_exclusive_axes(self, capsys):
        from repro.cli import main

        rc = main([
            "dispatch", "--workers", "127.0.0.1:1", "--balancer", "diffusion",
            "--topology", "torus:4x4", "--partitions", "2", "--shards", "2",
        ])
        assert rc == 2
        assert "exclusive" in capsys.readouterr().err
