"""Tests for the rank-per-block MPI runner (skipped without mpi4py).

Single-process tests exercise the rank-0 plumbing on ``COMM_SELF``; the
end-to-end test launches a real ``mpiexec`` job when one is on PATH (the
CI mpi leg always runs it).
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.distributed.transport import TransportError, have_mpi

pytestmark = pytest.mark.skipif(not have_mpi(), reason="mpi4py not importable")


def _comm_self():
    from mpi4py import MPI

    return MPI.COMM_SELF


class TestRankZeroPlumbing:
    def test_mpi_available_matches_gate(self):
        from repro.distributed.mpi import mpi_available

        assert mpi_available() is True

    def test_too_few_ranks_raises_before_shipping(self):
        """P blocks on a size-1 comm must fail with launch guidance."""
        from repro.core.diffusion import DiffusionBalancer
        from repro.distributed.mpi import run_partitioned_mpi
        from repro.graphs import generators as g
        from repro.simulation.stopping import MaxRounds

        topo = g.cycle(12)
        with pytest.raises(TransportError, match="mpiexec -n 3"):
            run_partitioned_mpi(
                DiffusionBalancer(topo), np.arange(12, dtype=np.float64),
                partitions=2, stopping=[MaxRounds(3)], comm=_comm_self(),
            )

    def test_serve_block_rank_idles_out(self):
        """An ("idle",) assignment returns without building halo links."""
        from repro.distributed.mpi import CTRL_TAG, serve_block_rank
        from repro.distributed.transport import MpiChannel

        comm = _comm_self().Dup()
        try:
            poster = MpiChannel(comm, 0, send_tag=CTRL_TAG)
            poster.send(("idle",))
            serve_block_rank(comm, timeout=10.0)  # rank 0 == self on COMM_SELF
            poster.close()
        finally:
            comm.Free()


@pytest.mark.skipif(shutil.which("mpiexec") is None, reason="no mpiexec on PATH")
class TestMpiExecEndToEnd:
    def _launch(self, *extra, ranks=3):
        src = str(Path(__file__).resolve().parents[2] / "src")
        return subprocess.run(
            ["mpiexec", "-n", str(ranks), sys.executable, "-m", "repro",
             "mpi-run", "--balancer", "diffusion", "--topology", "cycle:16",
             "--partitions", "2", "--rounds", "20", *extra],
            capture_output=True, text=True, timeout=180,
            env={"PYTHONPATH": src, "PATH": __import__("os").environ["PATH"]},
        )

    def test_verify_bit_for_bit(self):
        out = self._launch("--verify")
        assert out.returncode == 0, out.stdout + out.stderr
        assert "verify OK: bit-for-bit identical" in out.stdout

    def test_json_summary(self):
        out = self._launch("--json")
        assert out.returncode == 0, out.stdout + out.stderr
        summary = json.loads(out.stdout)
        dist = summary["distributed"]
        assert dist["mode"] == "mpi" and dist["ranks"] == 3
        assert set(dist["blocks_by_rank"]) == {"rank1", "rank2"}
        assert dist["halo_bytes"] == sum(dist["links"].values())
        assert summary["links_per_round"]
        assert all(v["bytes_sent"] > 0 for v in dist["control_traffic"].values())

    def test_surplus_ranks_idle_out(self):
        out = self._launch(ranks=4)
        assert out.returncode == 0, out.stdout + out.stderr
        assert "rounds" in out.stdout
