"""Degenerate halo payloads through the worker exchange helpers.

Real partitions of undirected graphs never produce an empty ``send_idx``
(a cut edge puts boundary nodes on both sides), so the zero-row frame
path is exercised here with stub locals: one direction of a link ships a
``(0, B)`` slab while the other ships real rows.  The exchange must stay
deadlock-free, deliver exact values, and account bytes identically over
loopback, pipes and TCP.
"""

import threading

import numpy as np
import pytest

from repro.distributed.transport import make_pair
from repro.distributed.worker import exchange_halos
from repro.graphs.partition import HaloLink

TRANSPORTS = ["loopback", "mp-pipe", "tcp"]


class _StubLocal:
    def __init__(self, p, links, n_owned, n_ghost):
        self.p = p
        self.links = links
        self.n_owned = n_owned
        self.n_ghost = n_ghost
        self.n_ext = n_owned + n_ghost


def _asymmetric_pair():
    """Block 0 sends zero rows to block 1; block 1 sends two rows back."""
    local0 = _StubLocal(
        0,
        [HaloLink(peer=1, send_idx=np.empty(0, dtype=np.int64),
                  recv_idx=np.arange(2, dtype=np.int64))],
        n_owned=3, n_ghost=2,
    )
    local1 = _StubLocal(
        1,
        [HaloLink(peer=0, send_idx=np.array([1, 3], dtype=np.int64),
                  recv_idx=np.empty(0, dtype=np.int64))],
        n_owned=4, n_ghost=0,
    )
    return local0, local1


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_empty_send_idx_exchanges_cleanly(transport):
    local0, local1 = _asymmetric_pair()
    ch0, ch1 = make_pair(transport)
    owned0 = np.arange(6, dtype=np.float64).reshape(3, 2)
    owned1 = np.arange(100, 108, dtype=np.float64).reshape(4, 2)
    results = {}

    def side(local, owned, peers, key):
        results[key] = exchange_halos(local, owned, peers, timeout=10.0)

    t0 = threading.Thread(target=side, args=(local0, owned0, {1: ch0}, 0))
    t1 = threading.Thread(target=side, args=(local1, owned1, {0: ch1}, 1))
    t0.start(), t1.start()
    t0.join(timeout=10), t1.join(timeout=10)
    assert not t0.is_alive() and not t1.is_alive(), "exchange wedged"
    ext0, sent0 = results[0]
    ext1, sent1 = results[1]
    assert sent0 == 0 and sent1 == 4  # 2 rows x batch width 2
    assert np.array_equal(ext0[:3], owned0)
    assert np.array_equal(ext0[3:], owned1[[1, 3]])
    assert np.array_equal(ext1, owned1)  # no ghosts on block 1
    ch0.close(), ch1.close()


def test_byte_totals_identical_across_transports_for_zero_row_frames():
    totals = {}
    for transport in TRANSPORTS:
        local0, local1 = _asymmetric_pair()
        ch0, ch1 = make_pair(transport)
        owned0 = np.zeros((3, 2))
        owned1 = np.ones((4, 2))
        done = {}

        def side(local, owned, peers, key):
            done[key] = exchange_halos(local, owned, peers, timeout=10.0)

        t0 = threading.Thread(target=side, args=(local0, owned0, {1: ch0}, 0))
        t1 = threading.Thread(target=side, args=(local1, owned1, {0: ch1}, 1))
        t0.start(), t1.start()
        t0.join(timeout=10), t1.join(timeout=10)
        assert not t0.is_alive() and not t1.is_alive()
        totals[transport] = (ch0.bytes_sent, ch1.bytes_sent)
        ch0.close(), ch1.close()
    assert len(set(totals.values())) == 1, totals


def test_exchange_sends_fresh_row_copies():
    """Fancy indexing snapshots the send rows, so mutating ``owned``
    after the exchange cannot corrupt what the peer received — even over
    loopback, which delivers objects by reference."""
    local0, local1 = _asymmetric_pair()
    ch0, ch1 = make_pair("loopback")
    owned0 = np.zeros((3, 2))
    owned1 = np.arange(8, dtype=np.float64).reshape(4, 2)
    results = {}

    def side(local, owned, peers, key):
        results[key] = exchange_halos(local, owned, peers, timeout=5.0)

    t0 = threading.Thread(target=side, args=(local0, owned0, {1: ch0}, 0))
    t1 = threading.Thread(target=side, args=(local1, owned1, {0: ch1}, 1))
    t0.start(), t1.start()
    t0.join(timeout=5), t1.join(timeout=5)
    expected = owned1[[1, 3]].copy()
    owned1[...] = -1.0  # sender mutates after the exchange
    assert np.array_equal(results[0][0][3:], expected)
    ch0.close(), ch1.close()
