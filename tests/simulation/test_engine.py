"""Unit tests for the Simulator engine."""

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.core.protocols import Balancer
from repro.simulation.engine import Simulator, run_balancer
from repro.simulation.initial import point_load
from repro.simulation.stopping import MaxRounds, PotentialBelow, PotentialFractionBelow


class TestBasicRun:
    def test_runs_exact_round_count(self, torus):
        bal = DiffusionBalancer(torus)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=17)
        assert trace.rounds == 17
        assert trace.stopped_by == "max-rounds(17)"

    def test_zero_rounds(self, torus):
        bal = DiffusionBalancer(torus)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=0)
        assert trace.rounds == 0

    def test_stops_at_potential_rule(self, torus):
        bal = DiffusionBalancer(torus)
        sim = Simulator(bal, stopping=[PotentialFractionBelow(0.01), MaxRounds(10_000)])
        trace = sim.run(point_load(torus.n, discrete=False), 0)
        assert trace.last_potential <= 0.01 * trace.initial_potential
        assert trace.stopped_by.startswith("potential<=")

    def test_default_max_rounds_injected(self, torus):
        sim = Simulator(DiffusionBalancer(torus), stopping=[PotentialBelow(-1.0)])
        assert any(isinstance(r, MaxRounds) for r in sim.stopping)

    def test_balancer_reset_between_runs(self, torus):
        bal = DiffusionBalancer(torus)
        sim = Simulator(bal, stopping=[MaxRounds(5)])
        sim.run(point_load(torus.n, discrete=False), 0)
        assert bal.state.round == 5
        sim.run(point_load(torus.n, discrete=False), 0)
        assert bal.state.round == 5  # reset, then 5 fresh rounds

    def test_seed_accepts_generator(self, torus):
        bal = DiffusionBalancer(torus)
        rng = np.random.default_rng(3)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=3, seed=rng)
        assert trace.rounds == 3

    def test_reproducible_given_seed(self, torus):
        from repro.core.random_partner import RandomPartnerBalancer

        loads = point_load(torus.n, discrete=False)
        t1 = run_balancer(RandomPartnerBalancer(), loads, rounds=20, seed=5)
        t2 = run_balancer(RandomPartnerBalancer(), loads, rounds=20, seed=5)
        assert t1.potentials == t2.potentials

    def test_different_seeds_differ(self, torus):
        from repro.core.random_partner import RandomPartnerBalancer

        loads = point_load(torus.n, discrete=False)
        t1 = run_balancer(RandomPartnerBalancer(), loads, rounds=20, seed=5)
        t2 = run_balancer(RandomPartnerBalancer(), loads, rounds=20, seed=6)
        assert t1.potentials != t2.potentials


class _LeakyBalancer(Balancer):
    """Deliberately loses load — must trip the conservation audit."""

    name = "leaky"
    mode = "continuous"

    def step(self, loads, rng):
        out = loads.copy()
        out[0] = 0.0
        return out


class _LeakyDiscrete(Balancer):
    name = "leaky-int"
    mode = "discrete"

    def step(self, loads, rng):
        out = loads.copy()
        out[0] += 1
        return out


class TestConservationAudit:
    def test_continuous_leak_detected(self):
        sim = Simulator(_LeakyBalancer(), stopping=[MaxRounds(5)])
        with pytest.raises(AssertionError, match="leaked"):
            sim.run(np.asarray([5.0, 5.0]), 0)

    def test_discrete_leak_detected(self):
        sim = Simulator(_LeakyDiscrete(), stopping=[MaxRounds(5)])
        with pytest.raises(AssertionError, match="leaked"):
            sim.run(np.asarray([5, 5], dtype=np.int64), 0)

    def test_audit_can_be_disabled(self):
        sim = Simulator(_LeakyBalancer(), stopping=[MaxRounds(2)], check_conservation=False)
        trace = sim.run(np.asarray([5.0, 5.0]), 0)
        assert trace.rounds == 2

    def test_healthy_run_passes_audit(self, torus):
        sim = Simulator(DiffusionBalancer(torus, mode="discrete"), stopping=[MaxRounds(50)])
        trace = sim.run(point_load(torus.n, total=6400), 0)
        assert trace.conservation_error() == 0.0


class TestRunBalancerStoppingContract:
    def test_exact_rounds_even_when_converged(self, torus):
        """A balanced start makes zero progress; the default call must
        still run every requested round (no hidden stagnation rule)."""
        bal = DiffusionBalancer(torus, mode="discrete")
        trace = run_balancer(bal, np.full(torus.n, 5, dtype=np.int64), rounds=40)
        assert trace.rounds == 40
        assert trace.stopped_by == "max-rounds(40)"

    def test_extra_rules_may_stop_earlier(self, torus):
        from repro.simulation.stopping import Stagnation

        bal = DiffusionBalancer(torus, mode="discrete")
        trace = run_balancer(
            bal,
            np.full(torus.n, 5, dtype=np.int64),
            rounds=40,
            stopping=[Stagnation(patience=3)],
        )
        assert trace.rounds == 3
        assert trace.stopped_by == "stagnation(3)"

    def test_rounds_beyond_engine_default_cap(self, torus):
        """The engine's implicit 1e6-round safety net must not shadow a
        larger caller-supplied budget (regression guard)."""
        bal = DiffusionBalancer(torus)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=0)
        assert trace.rounds == 0
        from repro.simulation.engine import Simulator
        from repro.simulation.stopping import MaxRounds

        sim = Simulator(bal, stopping=[MaxRounds(2_000_000)])
        assert sum(isinstance(r, MaxRounds) for r in sim.stopping) == 1
        assert sim.stopping[0].rounds == 2_000_000


class TestSnapshots:
    def test_snapshots_align_with_rounds(self, torus):
        bal = DiffusionBalancer(torus)
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=4, keep_snapshots=True)
        assert len(trace.snapshots) == 5  # initial + 4 rounds
