"""Parity + unit tests for node-axis partitioned execution.

The load-bearing property: :class:`PartitionedSimulator` trajectories are
**bit-for-bit identical** to the serial :class:`Simulator` and the
lockstep :class:`EnsembleSimulator` — for diffusion (continuous and
discrete), FOS, P in {2, 4, 7}, both partition strategies, and dynamic
topologies whose cut set changes between rounds.
"""

import numpy as np
import pytest

from repro.baselines.first_order import FirstOrderBalancer
from repro.baselines.ops import OptimalPolynomialBalancer
from repro.core.diffusion import DiffusionBalancer
from repro.graphs.dynamic import AlternatingDynamics, EdgeSamplingDynamics
from repro.graphs.generators import hypercube, torus_2d
from repro.graphs.partition import PARTITION_STRATEGIES, make_partition
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.partitioned import PartitionedSimulator, block_local
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow

ROUNDS = 25


def _loads(topo, discrete, seed=5):
    rng = np.random.default_rng(seed)
    if discrete:
        return rng.integers(0, 10_000, topo.n).astype(np.int64)
    return rng.uniform(0.0, 10_000.0, topo.n)


def _serial_snapshots(balancer, loads, rounds=ROUNDS):
    trace = Simulator(balancer, stopping=[MaxRounds(rounds)], keep_snapshots=True).run(loads, 0)
    return [np.asarray(s) for s in trace._snapshots]


BALANCER_FACTORIES = [
    ("diffusion-cont", lambda net: DiffusionBalancer(net), False),
    ("diffusion-disc", lambda net: DiffusionBalancer(net, mode="discrete"), True),
    ("fos", lambda net: FirstOrderBalancer(net), False),
]


class TestPartitionedParity:
    """Partitioned == serial == ensemble, bit for bit, across the grid."""

    @pytest.fixture(scope="class")
    def topo(self):
        return torus_2d(6, 6)

    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    @pytest.mark.parametrize("P", [2, 4, 7])
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_inprocess_matches_serial(self, topo, label, factory, discrete, P, strategy):
        loads = _loads(topo, discrete)
        expected = _serial_snapshots(factory(topo), loads.copy())
        psim = PartitionedSimulator(
            factory(topo), partitions=P, strategy=strategy,
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        )
        trace = psim.run(loads.copy())
        assert trace.rounds == ROUNDS
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert psim.halo_stats["rounds"] == ROUNDS
        if P > 1:
            assert psim.halo_stats["halo_values"] > 0

    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    def test_inprocess_matches_ensemble_replicas(self, topo, label, factory, discrete):
        """The node axis composes with the replica axis: (n_block, B) slabs."""
        B = 5
        rng = np.random.default_rng(11)
        if discrete:
            batch = rng.integers(0, 10_000, (B, topo.n)).astype(np.int64)
        else:
            batch = rng.uniform(0.0, 10_000.0, (B, topo.n))
        ens = EnsembleSimulator(
            factory(topo), stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
            serial_singleton=False,
        ).run(batch.copy(), seed=0)
        part = PartitionedSimulator(
            factory(topo), partitions=4, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        ).run(batch.copy())
        assert np.array_equal(ens.final_loads, part.final_loads)
        for t in range(ens.recorded_states):
            assert np.array_equal(ens.snapshots[t], part.snapshots[t]), f"round {t}"
        # In-process statistics come from the assembled global matrix, so
        # they match the ensemble engine exactly, not just to the ulp.
        assert np.array_equal(ens.potentials_matrix, part.potentials_matrix)

    @pytest.mark.parametrize("P", [2, 4, 7])
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_dynamic_edge_failures_parity(self, P, strategy):
        """The cut set changes between rounds; trajectories still match."""
        base = torus_2d(6, 6)
        loads = _loads(base, discrete=True)
        expected = _serial_snapshots(
            DiffusionBalancer(EdgeSamplingDynamics(base, p=0.6, seed=9), mode="discrete"),
            loads.copy(),
        )
        psim = PartitionedSimulator(
            DiffusionBalancer(EdgeSamplingDynamics(base, p=0.6, seed=9), mode="discrete"),
            partitions=P, strategy=strategy,
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        )
        trace = psim.run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"

    def test_alternating_dynamics_parity(self):
        """Phased topologies (disjoint edge sets per round) stay exact."""
        base = torus_2d(6, 6)
        rows = base.subgraph_with_edges(base.edges[:, 1] == base.edges[:, 0] + 1)
        cols = base.subgraph_with_edges(base.edges[:, 1] != base.edges[:, 0] + 1)
        loads = _loads(base, discrete=False)
        dyn = AlternatingDynamics([rows, cols])
        expected = _serial_snapshots(DiffusionBalancer(dyn), loads.copy())
        trace = PartitionedSimulator(
            DiffusionBalancer(AlternatingDynamics([rows, cols])),
            partitions=4, strategy="contiguous",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        ).run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"

    def test_stopping_rules_fire_like_ensemble(self):
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=False)
        rules = lambda: [PotentialFractionBelow(1e-3), MaxRounds(2000)]
        ens = EnsembleSimulator(
            DiffusionBalancer(topo), stopping=rules(), serial_singleton=False
        ).run(loads.copy(), seed=0, replicas=1)
        part = PartitionedSimulator(
            DiffusionBalancer(topo), partitions=3, stopping=rules()
        ).run(loads.copy())
        assert part.stopped_by == ens.stopped_by
        assert part.rounds == ens.rounds
        assert np.array_equal(ens.final_loads, part.final_loads)

    def test_hypercube_parity(self):
        topo = hypercube(6)
        loads = _loads(topo, discrete=True)
        expected = _serial_snapshots(DiffusionBalancer(topo, mode="discrete"), loads.copy())
        trace = PartitionedSimulator(
            DiffusionBalancer(topo, mode="discrete"), partitions="4:bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True,
        ).run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"


class TestProcessMode:
    """Persistent worker processes + transport-channel halo exchange."""

    @pytest.mark.parametrize("transport", ["mp-pipe", "tcp"])
    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    def test_process_matches_serial(self, label, factory, discrete, transport):
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete)
        expected = _serial_snapshots(factory(topo), loads.copy())
        psim = PartitionedSimulator(
            factory(topo), partitions=3, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True, mode="process",
            transport=transport,
        )
        trace = psim.run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert psim.halo_stats["mode"] == "process"
        assert psim.halo_stats["transport"] == transport
        # Transport channels account payload bytes per directed link.
        assert psim.halo_stats["halo_bytes"] > 0
        assert all(v > 0 for v in psim.halo_stats["links"].values())

    @pytest.mark.parametrize("transport", ["mp-pipe", "tcp"])
    def test_dynamic_edge_failures_over_transport(self, transport):
        """Satellite: a dynamic topology's cut set changes per round;
        the pairwise halo protocol must not desync over TCP (or pipes) —
        snapshots stay bit-for-bit equal to the serial run."""
        base = torus_2d(6, 6)
        loads = _loads(base, discrete=True)
        make = lambda: DiffusionBalancer(
            EdgeSamplingDynamics(base, p=0.6, seed=9), mode="discrete"
        )
        expected = _serial_snapshots(make(), loads.copy())
        psim = PartitionedSimulator(
            make(), partitions=4, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True, mode="process",
            transport=transport,
        )
        trace = psim.run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert psim.halo_stats["halo_values"] > 0
        assert psim.halo_stats["halo_bytes"] > 0

    def test_transports_move_identical_payload_bytes(self):
        """Same run, same pickled halo frames: the per-link byte totals
        are transport-independent (the counters count payloads, not wire
        overhead), so bench numbers compare across wires."""
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=True)
        totals = {}
        for transport in ("mp-pipe", "tcp"):
            psim = PartitionedSimulator(
                DiffusionBalancer(topo, mode="discrete"), partitions=3,
                stopping=[MaxRounds(10)], mode="process", transport=transport,
            )
            psim.run(loads.copy())
            totals[transport] = (
                psim.halo_stats["halo_bytes"], dict(psim.halo_stats["links"])
            )
        assert totals["mp-pipe"] == totals["tcp"]

    def test_dead_block_worker_raises_instead_of_hanging(self):
        """SIGKILL a block worker mid-run: the coordinator must surface
        a diagnostic RuntimeError promptly.  EOF semantics depend on fd
        hygiene — every process drops the endpoint copies that are not
        its own — so a crashed worker's links actually close."""
        import multiprocessing as mp
        import os
        import signal
        import threading
        import time

        topo = torus_2d(8, 8)
        loads = _loads(topo, discrete=True)
        psim = PartitionedSimulator(
            DiffusionBalancer(topo, mode="discrete"), partitions=3, mode="process",
            # A threshold no discrete trajectory reaches: only the kill
            # ends the run (per-round chunks, so the coordinator is
            # mid-protocol when the worker dies).
            stopping=[PotentialFractionBelow(1e-300), MaxRounds(10_000_000)],
        )
        outcome = {}

        def run():
            try:
                psim.run(loads.copy())
                outcome["result"] = "completed"
            except RuntimeError as exc:
                outcome["result"] = f"error: {exc}"

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(1.0)
        victims = mp.active_children()
        assert victims, "no block workers running"
        os.kill(victims[0].pid, signal.SIGKILL)
        thread.join(timeout=30)
        assert not thread.is_alive(), "coordinator hung after worker death"
        assert outcome["result"].startswith("error:"), outcome

    def test_loopback_transport_rejected_for_process_mode(self):
        topo = torus_2d(4, 4)
        with pytest.raises(ValueError, match="transport"):
            PartitionedSimulator(
                DiffusionBalancer(topo), partitions=2, mode="process",
                transport="loopback",
            )

    def test_inprocess_mode_reports_no_transport(self):
        topo = torus_2d(4, 4)
        psim = PartitionedSimulator(
            DiffusionBalancer(topo), partitions=2, stopping=[MaxRounds(3)]
        )
        psim.run(_loads(topo, discrete=False))
        assert psim.halo_stats["transport"] is None
        assert psim.halo_stats["halo_bytes"] == 0

    def test_process_chunked_free_run_final_loads(self):
        """MaxRounds-only stopping free-runs workers without per-round
        coordinator sync; the final loads still match the serial run."""
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=True)
        serial = Simulator(
            DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(40)]
        ).run(loads.copy(), 0)
        psim = PartitionedSimulator(
            DiffusionBalancer(topo, mode="discrete"), partitions=4,
            stopping=[MaxRounds(40)], mode="process",
        )
        trace = psim.run(loads.copy())
        assert trace.rounds == 40
        assert np.array_equal(
            np.asarray(serial._last_loads, dtype=np.int64), trace.final_loads[0]
        )
        assert psim.halo_stats["rounds"] == 40

    def test_process_with_replicas_and_dynamic(self):
        base = torus_2d(6, 6)
        B = 3
        rng = np.random.default_rng(2)
        batch = rng.integers(0, 5_000, (B, base.n)).astype(np.int64)
        make = lambda: DiffusionBalancer(
            EdgeSamplingDynamics(base, p=0.7, seed=21), mode="discrete"
        )
        ens = EnsembleSimulator(
            make(), stopping=[MaxRounds(15)], keep_snapshots=True, serial_singleton=False
        ).run(batch.copy(), seed=0)
        trace = PartitionedSimulator(
            make(), partitions=4, stopping=[MaxRounds(15)],
            keep_snapshots=True, mode="process",
        ).run(batch.copy())
        assert np.array_equal(ens.final_loads, trace.final_loads)
        for t in range(ens.recorded_states):
            assert np.array_equal(ens.snapshots[t], trace.snapshots[t]), f"round {t}"

    def test_process_conservation_and_stats_close(self):
        """Process-mode derived statistics combine block partials: equal to
        the ulp, with exact integer sums for discrete runs."""
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=True)
        ens = EnsembleSimulator(
            DiffusionBalancer(topo, mode="discrete"), stopping=[MaxRounds(20)],
            serial_singleton=False,
        ).run(loads.copy(), seed=0, replicas=1)
        psim = PartitionedSimulator(
            DiffusionBalancer(topo, mode="discrete"), partitions=3,
            stopping=[MaxRounds(20)], mode="process",
        )
        trace = psim.run(loads.copy())
        assert np.array_equal(trace.load_sums_matrix, ens.load_sums_matrix)  # exact ints
        np.testing.assert_allclose(
            trace.potentials_matrix, ens.potentials_matrix, rtol=1e-12
        )


class TestBlockLocal:
    def test_extended_index_space(self):
        topo = torus_2d(4, 4)
        part = make_partition(topo, 2, "contiguous")
        loc = block_local(part, 0)
        assert loc.n_ext == loc.n_owned + loc.n_ghost
        assert np.array_equal(loc.ext_ids[: loc.n_owned], part.owned[0])
        assert np.array_equal(loc.ext_ids[loc.n_owned :], part.ghosts[0])
        # Block edges: at least one owned endpoint, endpoints inside ext.
        assert (loc.u_loc >= 0).all() and (loc.v_loc >= 0).all()
        assert (loc.u_loc < loc.n_ext).all() and (loc.v_loc < loc.n_ext).all()

    def test_block_local_cached(self):
        topo = torus_2d(4, 4)
        part = make_partition(topo, 2)
        assert block_local(part, 0) is block_local(part, 0)
        assert block_local(part, 0) is not block_local(part, 1)

    def test_round_rows_match_global_rows(self):
        topo = torus_2d(4, 4)
        part = make_partition(topo, 2, "bfs")
        loc = block_local(part, 1)
        M = loc.op.round_csr()
        rows = loc.round_rows()
        # Same data values in the same stored order, columns relabelled.
        start_g = M.indptr[part.owned[1][0]]
        assert rows.data[0] == M.data[start_g]
        assert rows.shape == (loc.n_owned, loc.n_ext)

    def test_out_of_range_block_rejected(self):
        part = make_partition(torus_2d(4, 4), 2)
        with pytest.raises(ValueError):
            block_local(part, 5)


class TestPartitionedValidation:
    def test_unsupported_balancer_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(TypeError, match="partitioned"):
            PartitionedSimulator(OptimalPolynomialBalancer(topo), partitions=2)

    def test_fos_discrete_variant_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(TypeError, match="partitioned"):
            PartitionedSimulator(FirstOrderBalancer(topo, variant="floor"), partitions=2)

    def test_bad_mode_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(ValueError, match="mode"):
            PartitionedSimulator(DiffusionBalancer(topo), partitions=2, mode="threads")

    def test_bad_partition_spec_rejected(self):
        topo = torus_2d(4, 4)
        with pytest.raises(ValueError):
            PartitionedSimulator(DiffusionBalancer(topo), partitions="2:metis")

    def test_assignment_shape_checked(self):
        topo = torus_2d(4, 4)
        sim = PartitionedSimulator(
            DiffusionBalancer(topo), partitions=2,
            assignment=np.zeros(5, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="assignment"):
            sim.run(np.ones(topo.n))

    def test_explicit_assignment_used(self):
        topo = torus_2d(4, 4)
        assignment = np.zeros(topo.n, dtype=np.int64)
        assignment[topo.n // 2 :] = 1
        loads = _loads(topo, discrete=False)
        expected = _serial_snapshots(DiffusionBalancer(topo), loads.copy(), rounds=10)
        sim = PartitionedSimulator(
            DiffusionBalancer(topo), assignment=assignment,
            stopping=[MaxRounds(10)], keep_snapshots=True,
        )
        trace = sim.run(loads.copy())
        assert sim.halo_stats["blocks"] == 2
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0])

    def test_single_partition_degrades_to_global(self):
        topo = torus_2d(4, 4)
        loads = _loads(topo, discrete=False)
        psim = PartitionedSimulator(DiffusionBalancer(topo), partitions=1,
                                    stopping=[MaxRounds(10)])
        trace = psim.run(loads.copy())
        assert trace.rounds == 10
        assert psim.halo_stats["halo_values"] == 0


class TestSplitPhaseKernels:
    """Row-subset round kernels: interior + boundary == full, bit for bit."""

    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    @pytest.mark.parametrize("P", [2, 4])
    def test_subset_rounds_equal_full_round(self, label, factory, discrete, P):
        topo = torus_2d(6, 6)
        part = make_partition(topo, P, "bfs")
        bal = factory(topo)
        rng = np.random.default_rng(11)
        L = (rng.integers(0, 500, (topo.n, 3)).astype(np.int64) if discrete
             else rng.uniform(0.0, 500.0, (topo.n, 3)))
        for p in range(P):
            loc = block_local(part, p)
            ext = L[loc.ext_ids]
            full = bal.block_step(loc, ext)
            split = np.full_like(full, -1)
            bal.block_step(loc, ext, out=split, rows="interior")
            bal.block_step(loc, ext, out=split, rows="boundary")
            assert np.array_equal(full, split), f"block {p}"

    def test_interior_rows_ignore_ghost_values(self):
        """The overlap contract: interior rows have owned-only operator
        support, so garbage in the ghost slice cannot change them."""
        topo = torus_2d(8, 8)
        part = make_partition(topo, 2, "bfs")
        bal = DiffusionBalancer(topo, mode="discrete")
        loc = block_local(part, 0)
        rng = np.random.default_rng(12)
        L = rng.integers(0, 500, (topo.n, 2)).astype(np.int64)
        ext = L[loc.ext_ids]
        clean = np.zeros((loc.n_owned, 2), dtype=np.int64)
        bal.block_step(loc, ext, out=clean, rows="interior")
        trashed = ext.copy()
        trashed[loc.n_owned:] = 999_983  # stale/garbage ghosts
        dirty = np.zeros_like(clean)
        bal.block_step(loc, trashed, out=dirty, rows="interior")
        assert loc.interior.size > 0
        assert np.array_equal(clean[loc.interior], dirty[loc.interior])

    def test_ghosts_grouped_by_owner(self):
        """BlockLocal reorders its private ghost segment grouped by owning
        block (ascending global id within each group) so every link's
        receive region is one contiguous slice."""
        topo = torus_2d(6, 6)
        part = make_partition(topo, 4, "bfs")
        for p in range(4):
            loc = block_local(part, p)
            ghost_ids = loc.ext_ids[loc.n_owned:]
            assert set(ghost_ids.tolist()) == set(part.ghosts[p].tolist())
            owners = part.assignment[ghost_ids]
            # grouped: owner sequence is non-decreasing
            assert (np.diff(owners) >= 0).all()
            for link in loc.links:
                a, b = loc.recv_slices[link.peer]
                assert np.array_equal(link.recv_idx, np.arange(a, b))
                assert (owners[a:b] == link.peer).all()
                # ascending global id within the group
                assert (np.diff(ghost_ids[a:b]) > 0).all()


class TestOverlapAndDeltaFrames:
    """Split-phase overlap + delta halo frames: parity and byte wins."""

    @pytest.mark.parametrize("transport", ["mp-pipe", "tcp"])
    @pytest.mark.parametrize("label,factory,discrete", BALANCER_FACTORIES,
                             ids=[b[0] for b in BALANCER_FACTORIES])
    def test_overlap_matches_serial(self, label, factory, discrete, transport):
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete)
        expected = _serial_snapshots(factory(topo), loads.copy())
        psim = PartitionedSimulator(
            factory(topo), partitions=3, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True, mode="process",
            transport=transport, overlap=True,
        )
        trace = psim.run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
        assert psim.halo_stats["overlap"] is True

    @pytest.mark.parametrize("overlap", [False, True])
    def test_delta_frames_match_serial_and_count_fewer_bytes(self, overlap):
        """Near convergence most discrete rows stop changing: delta frames
        ship fewer bytes while trajectories stay identical."""
        topo = torus_2d(8, 8)
        loads = np.full(topo.n, 100, dtype=np.int64)
        loads[:4] += np.array([40, 30, 20, 10])
        expected = _serial_snapshots(
            DiffusionBalancer(topo, mode="discrete"), loads.copy(), rounds=30)
        totals = {}
        for delta in (False, True):
            psim = PartitionedSimulator(
                DiffusionBalancer(topo, mode="discrete"), partitions=3,
                strategy="bfs", stopping=[MaxRounds(30)], keep_snapshots=True,
                mode="process", overlap=overlap, delta_frames=delta,
            )
            trace = psim.run(loads.copy())
            for t, snap in enumerate(expected):
                assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
            totals[delta] = psim.halo_stats["halo_bytes"]
            assert psim.halo_stats["delta_frames"] is delta
        assert totals[True] < totals[False]

    def test_delta_degenerates_to_dense_on_full_churn(self):
        """Continuous loads change every row every round, so the delta
        encoder always falls back to dense frames — byte totals equal the
        delta-off run exactly."""
        topo = torus_2d(6, 6)
        loads = _loads(topo, discrete=False)
        totals = {}
        for delta in (False, True):
            psim = PartitionedSimulator(
                DiffusionBalancer(topo), partitions=3, strategy="bfs",
                stopping=[MaxRounds(12)], mode="process", delta_frames=delta,
            )
            psim.run(loads.copy())
            totals[delta] = (
                psim.halo_stats["halo_bytes"], dict(psim.halo_stats["links"]))
        assert totals[True] == totals[False]

    @pytest.mark.parametrize("transport", ["mp-pipe", "tcp"])
    def test_overlap_delta_dynamic_topology(self, transport):
        """Dynamic cut sets rebuild the slabs and reset delta snapshots
        every round; trajectories stay bit-for-bit serial."""
        base = torus_2d(6, 6)
        loads = _loads(base, discrete=True)
        make = lambda: DiffusionBalancer(
            EdgeSamplingDynamics(base, p=0.6, seed=9), mode="discrete")
        expected = _serial_snapshots(make(), loads.copy())
        psim = PartitionedSimulator(
            make(), partitions=4, strategy="bfs",
            stopping=[MaxRounds(ROUNDS)], keep_snapshots=True, mode="process",
            transport=transport, overlap=True, delta_frames=True,
        )
        trace = psim.run(loads.copy())
        for t, snap in enumerate(expected):
            assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"

    def test_delta_frames_under_forced_chunking(self, monkeypatch):
        """Delta frames survive a tiny MAX_CHUNK_BYTES: many wire chunks
        per frame, identical trajectories and identical logical byte
        totals across transports."""
        import repro.distributed.transport as transport_mod
        monkeypatch.setattr(transport_mod, "MAX_CHUNK_BYTES", 512)
        topo = torus_2d(6, 6)
        loads = np.full(topo.n, 50, dtype=np.int64)
        loads[0] += 77
        expected = _serial_snapshots(
            DiffusionBalancer(topo, mode="discrete"), loads.copy(), rounds=15)
        totals = {}
        for transport in ("mp-pipe", "tcp"):
            psim = PartitionedSimulator(
                DiffusionBalancer(topo, mode="discrete"), partitions=3,
                strategy="bfs", stopping=[MaxRounds(15)], keep_snapshots=True,
                mode="process", transport=transport, overlap=True,
                delta_frames=True,
            )
            trace = psim.run(loads.copy())
            for t, snap in enumerate(expected):
                assert np.array_equal(snap, trace.snapshots[t][0]), f"round {t}"
            totals[transport] = (
                psim.halo_stats["halo_bytes"], dict(psim.halo_stats["links"]))
        assert totals["mp-pipe"] == totals["tcp"]

    def test_env_toggles_default_the_flags(self, monkeypatch):
        topo = torus_2d(4, 4)
        bal = DiffusionBalancer(topo)
        monkeypatch.setenv("REPRO_OVERLAP", "1")
        monkeypatch.setenv("REPRO_DELTA", "true")
        sim = PartitionedSimulator(bal, partitions=2, mode="process")
        assert sim.overlap is True and sim.delta_frames is True
        # Explicit kwargs win over the environment.
        sim = PartitionedSimulator(bal, partitions=2, mode="process",
                                   overlap=False, delta_frames=False)
        assert sim.overlap is False and sim.delta_frames is False
        monkeypatch.delenv("REPRO_OVERLAP")
        monkeypatch.delenv("REPRO_DELTA")
        sim = PartitionedSimulator(bal, partitions=2, mode="process")
        assert sim.overlap is False and sim.delta_frames is False
