"""Unit tests for the Fiedler worst-case workload and fiedler_vector."""

import numpy as np
import pytest

from repro.graphs import generators as g
from repro.graphs.spectral import fiedler_vector, lambda_2, laplacian_matrix
from repro.simulation.initial import fiedler_load


class TestFiedlerVector:
    def test_is_eigenvector_for_lambda2(self, torus):
        vec = fiedler_vector(torus)
        lap = laplacian_matrix(torus)
        lam2 = lambda_2(torus)
        assert np.allclose(lap @ vec, lam2 * vec, atol=1e-8)

    def test_unit_norm_and_orthogonal_to_ones(self, any_topology):
        if any_topology.n < 2:
            pytest.skip("needs n >= 2")
        vec = fiedler_vector(any_topology)
        assert np.linalg.norm(vec) == pytest.approx(1.0, rel=1e-9)
        assert vec.sum() == pytest.approx(0.0, abs=1e-8)

    def test_deterministic_sign(self, torus):
        a = fiedler_vector(torus)
        b = fiedler_vector(torus)
        assert np.array_equal(a, b)

    def test_single_node_rejected(self):
        from repro.graphs.topology import Topology

        with pytest.raises(ValueError):
            fiedler_vector(Topology(1, []))


class TestFiedlerLoad:
    def test_strictly_positive(self, any_topology):
        if any_topology.n < 2:
            pytest.skip("needs n >= 2")
        loads = fiedler_load(any_topology)
        assert (loads > 0).all()

    def test_peak_amplitude(self, torus):
        loads = fiedler_load(torus, amplitude=50.0)
        dev = loads - loads.mean()
        assert np.abs(dev).max() == pytest.approx(50.0, rel=0.05)

    def test_discrete_variant_integer(self, torus):
        loads = fiedler_load(torus, discrete=True)
        assert loads.dtype == np.int64

    def test_amplitude_validated(self, torus):
        with pytest.raises(ValueError):
            fiedler_load(torus, amplitude=0.0)

    def test_slowest_mode_on_regular_graph(self):
        """On a regular graph, Algorithm 1 contracts the Fiedler load at
        exactly (1 - lambda2/(4 delta)) per round in the l2 norm."""
        from repro.core.diffusion import diffusion_round_continuous
        from repro.core.potential import l2_error

        topo = g.cycle(16)
        lam2 = lambda_2(topo)
        expected = 1.0 - lam2 / (4 * topo.max_degree)
        loads = fiedler_load(topo)
        for _ in range(5):
            new = diffusion_round_continuous(loads, topo)
            assert l2_error(new) / l2_error(loads) == pytest.approx(expected, rel=1e-6)
            loads = new

    def test_slower_than_point_load(self):
        """Fiedler loads take at least as long as point loads per unit
        potential — they are the worst case."""
        from repro.core.diffusion import DiffusionBalancer
        from repro.experiments.common import run_to_fraction

        topo = g.torus_2d(4, 4)
        eps = 1e-8
        t_point = run_to_fraction(
            DiffusionBalancer(topo),
            np.where(np.arange(topo.n) == 0, 1600.0, 0.0), eps, 100_000
        ).rounds_to_fraction(eps)
        t_fiedler = run_to_fraction(
            DiffusionBalancer(topo), fiedler_load(topo), eps, 100_000
        ).rounds_to_fraction(eps)
        assert t_fiedler >= t_point
