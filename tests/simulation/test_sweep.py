"""Unit tests for the grid-sweep utility."""

import pytest

from repro.simulation.sweep import sweep


class TestSweep:
    def test_grid_shape(self):
        table, cells = sweep(["torus:4x4", "cycle:8"], ["diffusion", "fos"], eps=1e-2)
        assert len(cells) == 4
        assert len(table.rows) == 4

    def test_all_converge_on_easy_target(self):
        _, cells = sweep(["hypercube:4"], ["diffusion", "fos", "sos", "ops"], eps=1e-2)
        assert all(c.rounds is not None for c in cells)

    def test_discrete_scheme_gets_integer_loads(self):
        _, cells = sweep(["torus:4x4"], ["diffusion-discrete"], eps=1e-2)
        assert cells[0].rounds is not None

    def test_movement_positive_when_balancing(self):
        _, cells = sweep(["torus:4x4"], ["diffusion"], eps=1e-2)
        assert cells[0].total_movement > 0

    def test_same_seed_reproducible(self):
        _, a = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=3)
        _, b = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=3)
        assert a[0].rounds == b[0].rounds

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep([], ["diffusion"])
        with pytest.raises(ValueError):
            sweep(["torus:4x4"], [])

    def test_max_rounds_respected(self):
        # Impossible target within 3 rounds on a slow graph.
        _, cells = sweep(["cycle:16"], ["diffusion"], eps=1e-12, max_rounds=3)
        assert cells[0].rounds is None
        assert cells[0].stopped_by == "max-rounds(3)"


class TestSweepReplicas:
    def test_batched_cells_aggregate(self):
        table, cells = sweep(["torus:4x4"], ["diffusion", "random-partner"], eps=1e-2, replicas=4)
        assert all(c.replicas == 4 for c in cells)
        assert all(c.rounds is not None for c in cells)
        assert all(c.total_movement > 0 for c in cells)
        assert "4 replicas" in table.title

    def test_serial_fallback_for_unbatchable_scheme(self):
        # OPS has no batched kernel; the replica loop must still aggregate.
        _, cells = sweep(["hypercube:3"], ["ops"], eps=1e-2, replicas=3)
        assert cells[0].replicas == 3
        assert cells[0].rounds is not None

    def test_replicas_reproducible(self):
        _, a = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=5, replicas=3)
        _, b = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=5, replicas=3)
        assert a[0] == b[0]

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            sweep(["torus:4x4"], ["diffusion"], replicas=0)

    def test_partitioned_cells_match_standard_paths(self):
        """--partitions is an execution knob: partition-capable cells get
        identical trajectories (and fall back transparently otherwise)."""
        plain_1, cells_1 = sweep(["torus:4x4"], ["diffusion", "fos", "ops"], eps=1e-2)
        part_1, pcells_1 = sweep(
            ["torus:4x4"], ["diffusion", "fos", "ops"], eps=1e-2, partitions="2:bfs"
        )
        for a, b in zip(cells_1, pcells_1):
            assert a.rounds == b.rounds and a.stopped_by == b.stopped_by
        _, cells_r = sweep(["torus:4x4"], ["diffusion-discrete"], eps=1e-2, replicas=3)
        _, pcells_r = sweep(
            ["torus:4x4"], ["diffusion-discrete"], eps=1e-2, replicas=3, partitions=2
        )
        assert cells_r[0] == pcells_r[0]

    def test_bad_partitions_rejected(self):
        with pytest.raises(ValueError):
            sweep(["torus:4x4"], ["diffusion"], partitions="2:metis")

    def test_batched_and_serial_paths_agree(self, monkeypatch):
        """Forcing a batchable scheme down the serial replica loop must
        reproduce the batched cell exactly (same loads, same streams)."""
        from repro.core.random_partner import RandomPartnerBalancer

        _, batched = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=9, replicas=3)
        monkeypatch.setattr(RandomPartnerBalancer, "supports_batch", False)
        _, serial = sweep(["torus:4x4"], ["random-partner"], eps=1e-2, seed=9, replicas=3)
        assert batched[0].rounds == serial[0].rounds
        assert batched[0].stopped_by == serial[0].stopped_by
        assert batched[0].final_potential == pytest.approx(serial[0].final_potential, rel=1e-9)
        assert batched[0].total_movement == pytest.approx(serial[0].total_movement, rel=1e-9)


class TestTraceMovement:
    def test_net_movement_two_nodes(self):
        import numpy as np

        from repro.simulation.trace import Trace

        t = Trace()
        t.record(np.asarray([10.0, 0.0]))
        t.record(np.asarray([6.0, 4.0]))
        assert t.net_movements.tolist() == [4.0]
        assert t.total_net_movement() == 4.0

    def test_no_movement_entry_for_initial_state(self):
        import numpy as np

        from repro.simulation.trace import Trace

        t = Trace()
        t.record(np.asarray([1.0, 2.0]))
        assert t.net_movements.size == 0

    def test_movement_on_real_run_bounded_by_total_load(self):
        from repro.core.diffusion import DiffusionBalancer
        from repro.graphs.generators import torus_2d
        from repro.simulation.engine import run_balancer
        from repro.simulation.initial import point_load

        topo = torus_2d(4, 4)
        loads = point_load(topo.n, total=1600, discrete=True)
        trace = run_balancer(DiffusionBalancer(topo, mode="discrete"), loads, rounds=30)
        per_round = trace.net_movements
        assert (per_round >= 0).all()
        # No round can move more than the total load.
        assert per_round.max() <= 1600
