"""Unit tests for the token-identity simulator."""

import numpy as np
import pytest

from repro.core.diffusion import diffusion_round_discrete
from repro.graphs import generators as g
from repro.simulation.initial import point_load, uniform_random_load
from repro.simulation.tokens import TokenSimulator


class TestConstruction:
    def test_token_count_matches_loads(self, torus, rng):
        loads = uniform_random_load(torus.n, rng, high=20)
        sim = TokenSimulator(torus, loads)
        assert len(sim.tokens) == loads.sum()
        assert np.array_equal(sim.loads(), loads)

    def test_homes_recorded(self):
        t = g.path(3)
        sim = TokenSimulator(t, np.asarray([2, 0, 1], dtype=np.int64))
        assert [tok.home for tok in sim.tokens] == [0, 0, 2]

    def test_policy_validated(self, torus):
        with pytest.raises(ValueError, match="policy"):
            TokenSimulator(torus, np.zeros(torus.n, dtype=np.int64), policy="mru")

    def test_float_loads_rejected(self, torus):
        with pytest.raises(ValueError, match="integer"):
            TokenSimulator(torus, np.zeros(torus.n))

    def test_negative_rejected(self, torus):
        loads = np.zeros(torus.n, dtype=np.int64)
        loads[0] = -1
        with pytest.raises(ValueError):
            TokenSimulator(torus, loads)

    def test_shape_checked(self, torus):
        with pytest.raises(ValueError):
            TokenSimulator(torus, np.zeros(torus.n + 1, dtype=np.int64))


@pytest.mark.parametrize("policy", ["fifo", "lifo", "random"])
class TestDynamics:
    def test_loads_match_vectorized_kernel(self, policy, torus):
        loads = point_load(torus.n, total=3200, discrete=True)
        sim = TokenSimulator(torus, loads, policy=policy, seed=1)
        expected = loads.copy()
        for r in range(25):
            sim.round()
            expected = diffusion_round_discrete(expected, torus)
            assert np.array_equal(sim.loads(), expected), f"{policy} diverged at round {r}"

    def test_tokens_conserved_with_identity(self, policy, torus, rng):
        loads = uniform_random_load(torus.n, rng, high=50)
        sim = TokenSimulator(torus, loads, policy=policy, seed=2)
        sim.run(15)
        locs = sim.locations()
        assert locs.size == loads.sum()  # every id accounted for exactly once
        assert np.array_equal(np.bincount(locs, minlength=torus.n), sim.loads())

    def test_migrations_bounded_by_rounds(self, policy, torus):
        loads = point_load(torus.n, total=6400, discrete=True)
        sim = TokenSimulator(torus, loads, policy=policy, seed=3)
        stats = sim.run(10)
        assert stats.max_migrations <= 10

    def test_total_migrations_equals_flow_volume(self, policy, cube4):
        """Each migration is one token crossing one edge: the sum equals
        the kernel's total |flow| over the run."""
        loads = point_load(cube4.n, total=1600, discrete=True)
        sim = TokenSimulator(cube4, loads, policy=policy, seed=4)
        from repro.core.diffusion import diffusion_flows

        expected_volume = 0
        counts = loads.copy()
        for _ in range(12):
            flows = diffusion_flows(counts, cube4, discrete=True)
            expected_volume += int(np.abs(flows).sum())
            counts = diffusion_round_discrete(counts, cube4)
        stats = sim.run(12)
        assert stats.total_migrations == expected_volume


class TestPolicyDifferences:
    def test_policies_agree_on_loads_but_not_on_churn(self):
        topo = g.torus_2d(4, 4)
        loads = point_load(topo.n, total=16_000, discrete=True)
        stats = {}
        finals = {}
        for policy in ("fifo", "lifo", "random"):
            sim = TokenSimulator(topo, loads, policy=policy, seed=5)
            stats[policy] = sim.run(40)
            finals[policy] = sim.loads()
        # identical counts...
        assert np.array_equal(finals["fifo"], finals["lifo"])
        assert np.array_equal(finals["fifo"], finals["random"])
        # ...identical total work...
        assert stats["fifo"].total_migrations == stats["lifo"].total_migrations
        # ...but different per-token distribution: LIFO churns a few tokens
        # much harder than FIFO.
        assert stats["lifo"].max_migrations >= stats["fifo"].max_migrations

    def test_stats_on_balanced_system(self, torus):
        sim = TokenSimulator(torus, np.full(torus.n, 5, dtype=np.int64))
        stats = sim.run(5)
        assert stats.total_migrations == 0
        assert stats.fraction_never_moved == 1.0

    def test_empty_system(self, torus):
        sim = TokenSimulator(torus, np.zeros(torus.n, dtype=np.int64))
        stats = sim.run(3)
        assert stats.total_tokens == 0
