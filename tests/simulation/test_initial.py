"""Unit tests for initial load distributions."""

import numpy as np
import pytest

from repro.simulation import initial as ini


class TestPointLoad:
    def test_all_on_node_zero(self):
        v = ini.point_load(5, total=50)
        assert v[0] == 50 and v[1:].sum() == 0

    def test_default_total(self):
        assert ini.point_load(10).sum() == 1000

    def test_continuous_dtype(self):
        assert ini.point_load(4, total=10, discrete=False).dtype == np.float64

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ini.point_load(4, total=-1)


class TestBimodal:
    def test_halves(self):
        v = ini.bimodal_load(6, total=60)
        assert v[:3].sum() == 60 and v[3:].sum() == 0

    def test_exact_total_with_remainder(self):
        v = ini.bimodal_load(7, total=100)  # 3 loaded nodes, 100/3 uneven
        assert v.sum() == 100

    def test_continuous_split(self):
        v = ini.bimodal_load(8, total=80, discrete=False)
        assert np.allclose(v[:4], 20.0)


class TestUniformRandom:
    def test_range(self, rng):
        v = ini.uniform_random_load(100, rng, high=10)
        assert v.min() >= 0 and v.max() <= 10

    def test_discrete_dtype(self, rng):
        assert ini.uniform_random_load(5, rng).dtype == np.int64

    def test_continuous_dtype(self, rng):
        assert ini.uniform_random_load(5, rng, discrete=False).dtype == np.float64


class TestRamp:
    def test_values(self):
        assert ini.ramp_load(4).tolist() == [0, 1, 2, 3]

    def test_step(self):
        assert ini.ramp_load(3, step=5).tolist() == [0, 5, 10]

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ini.ramp_load(3, step=-1)


class TestZipf:
    def test_exact_total_discrete(self, rng):
        v = ini.zipf_load(50, rng, total=5000)
        assert v.sum() == 5000
        assert v.dtype == np.int64

    def test_skew_increases_with_exponent(self):
        r1 = np.random.default_rng(0)
        r2 = np.random.default_rng(0)
        mild = ini.zipf_load(100, r1, exponent=0.5, total=10_000)
        steep = ini.zipf_load(100, r2, exponent=2.5, total=10_000)
        assert steep.max() > mild.max()

    def test_continuous_total(self, rng):
        v = ini.zipf_load(20, rng, total=100, discrete=False)
        assert v.sum() == pytest.approx(100.0)

    def test_exponent_validated(self, rng):
        with pytest.raises(ValueError):
            ini.zipf_load(10, rng, exponent=0.0)


class TestAdversarial:
    def test_gap(self):
        v = ini.adversarial_linear(4, gap=3)
        assert v.tolist() == [0, 3, 6, 9]

    def test_stalls_discrete_diffusion_on_path(self):
        from repro.core.diffusion import diffusion_round_discrete
        from repro.graphs.generators import path

        t = path(8)
        v = ini.adversarial_linear(8, gap=7)  # gap < 4*max_deg = 8 stalls
        assert np.array_equal(diffusion_round_discrete(v, t), v)


class TestMakeLoads:
    def test_named_generators(self, rng):
        for kind in ("point", "bimodal", "uniform", "ramp", "zipf"):
            v = ini.make_loads(kind, 10, rng=rng)
            assert v.shape == (10,)

    def test_random_kinds_need_rng(self):
        with pytest.raises(ValueError, match="requires an rng"):
            ini.make_loads("uniform", 10)

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError, match="unknown load kind"):
            ini.make_loads("gaussian", 10, rng=rng)
