"""Unit + equivalence tests for the sharded ensemble execution layer."""

import numpy as np
import pytest

from repro.baselines.dimension_exchange import DimensionExchangeBalancer
from repro.core.diffusion import DiffusionBalancer
from repro.core.random_partner import RandomPartnerBalancer
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.initial import point_load
from repro.simulation.montecarlo import monte_carlo
from repro.simulation.sharding import (
    merge_ensemble_traces,
    parse_workers,
    run_sharded_ensemble,
    sharded_run_batch,
    split_shards,
)
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow


class _IndexTrial:
    """Module-level (picklable) trial: first draw identifies the stream."""

    def run_batch(self, rngs):
        return {"draw": np.asarray([r.random() for r in rngs])}


class _BrokenTrial:
    """Module-level trial returning the wrong number of samples."""

    def run_batch(self, rngs):
        return {"v": np.zeros(max(1, len(rngs) - 1))}


def _plain_trial(rng):
    return float(rng.random())


class TestParseWorkers:
    @pytest.mark.parametrize("spec,expected", [
        (1, (1, False)),
        (4, (4, False)),
        ("3", (3, False)),
        ("vectorized", (1, True)),
        ("4xvectorized", (4, True)),
        ("2x", (2, True)),
        ("8XVectorized", (8, True)),
        ((4, "vectorized"), (4, True)),
    ])
    def test_accepted_forms(self, spec, expected):
        assert parse_workers(spec) == expected

    @pytest.mark.parametrize("spec", [0, -2, "fast", "x4", "4y", (4, "serial"), 1.5, True])
    def test_rejected_forms(self, spec):
        with pytest.raises(ValueError):
            parse_workers(spec)

    @pytest.mark.parametrize("spec", [0, -2, "0", "-3", "+0"])
    def test_zero_and_negative_get_explicit_message(self, spec):
        """String CLI specs like '-3' must hit the same clear >= 1 error
        as plain ints, not the generic grammar message."""
        with pytest.raises(ValueError, match="workers must be >= 1"):
            parse_workers(spec)

    def test_oversubscription_warns(self, monkeypatch):
        from repro.simulation import sharding

        monkeypatch.setattr(sharding, "usable_cpus", lambda: 2)
        with pytest.warns(RuntimeWarning, match="exceeds the 2 usable"):
            assert parse_workers(8) == (8, False)
        with pytest.warns(RuntimeWarning, match="exceeds"):
            assert parse_workers("8xvectorized") == (8, True)

    def test_within_cpu_budget_does_not_warn(self, monkeypatch):
        import warnings

        from repro.simulation import sharding

        monkeypatch.setattr(sharding, "usable_cpus", lambda: 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parse_workers(4) == (4, False)
            assert parse_workers("vectorized") == (1, True)

    def test_usable_cpus_positive(self):
        from repro.simulation.sharding import usable_cpus

        assert usable_cpus() >= 1


class TestSplitShards:
    def test_even_split(self):
        assert split_shards(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert split_shards(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_shards_than_items(self):
        assert split_shards(2, 5) == [(0, 1), (1, 2)]

    def test_single_shard(self):
        assert split_shards(5, 1) == [(0, 5)]

    def test_zero_items(self):
        assert split_shards(0, 3) == []

    def test_covers_range_exactly(self):
        for total in (1, 5, 13, 64):
            for shards in (1, 2, 3, 7):
                blocks = split_shards(total, shards)
                flat = [i for a, b in blocks for i in range(a, b)]
                assert flat == list(range(total))

    def test_validation(self):
        with pytest.raises(ValueError):
            split_shards(-1, 2)
        with pytest.raises(ValueError):
            split_shards(4, 0)


class TestShardedEnsembleEquivalence:
    """Sharded == single-process vectorized == serial, per replica."""

    @pytest.fixture(scope="class")
    def topo(self):
        from repro.graphs import generators as g

        return g.torus_2d(6, 6)

    @pytest.mark.parametrize("make_bal,discrete", [
        (lambda topo: DiffusionBalancer(topo), False),
        (lambda topo: DiffusionBalancer(topo, mode="discrete"), True),
        (lambda topo: RandomPartnerBalancer(), False),
        (lambda topo: DimensionExchangeBalancer(topo, partner_rule="luby"), False),
    ])
    def test_loads_bit_for_bit_across_paths(self, topo, make_bal, discrete):
        B, seed = 7, 11
        loads = point_load(topo.n, total=100 * topo.n, discrete=discrete)
        rules = lambda: [PotentialFractionBelow(1e-3), MaxRounds(600)]
        single = EnsembleSimulator(
            make_bal(topo), stopping=rules(), keep_snapshots=True
        ).run(loads, seed=seed, replicas=B)
        sharded = run_sharded_ensemble(
            make_bal(topo), loads, seed=seed, replicas=B, workers=3,
            stopping=rules(), keep_snapshots=True,
        )
        assert sharded.replicas == B
        # Load trajectories: bit-for-bit across the whole run.
        assert np.array_equal(single.final_loads, sharded.final_loads)
        for t in range(single.recorded_states):
            assert np.array_equal(single.snapshots[t], sharded.snapshots[t]), f"round {t}"
        # Stopping behaviour: identical decisions.
        assert np.array_equal(single.rounds_vector, sharded.rounds_vector)
        assert single.stopped_by == sharded.stopped_by
        # Derived statistics: equal up to block-width summation order.
        assert np.allclose(single.potentials_matrix, sharded.potentials_matrix, rtol=1e-12)
        assert np.allclose(single.load_sums_matrix, sharded.load_sums_matrix, rtol=1e-12)

    def test_matches_serial_simulator_per_replica(self, topo):
        from repro.simulation.engine import Simulator

        B, seed = 5, 3
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        sharded = run_sharded_ensemble(
            RandomPartnerBalancer(), loads, seed=seed, replicas=B, workers=2,
            stopping=[MaxRounds(30)], keep_snapshots=True,
        )
        rngs = spawn_rngs(seed, B)
        for b in range(B):
            serial = Simulator(
                RandomPartnerBalancer(), stopping=[MaxRounds(30)], keep_snapshots=True
            ).run(loads, rngs[b])
            assert np.array_equal(serial.snapshots[-1], sharded.final_loads[b])

    def test_per_replica_initial_states(self, topo):
        B = 6
        batch = np.random.default_rng(4).uniform(0, 1000, (B, topo.n))
        single = EnsembleSimulator(
            DiffusionBalancer(topo), stopping=[MaxRounds(20)]
        ).run(batch, seed=2)
        sharded = run_sharded_ensemble(
            DiffusionBalancer(topo), batch, seed=2, workers=4, stopping=[MaxRounds(20)]
        )
        assert np.array_equal(single.final_loads, sharded.final_loads)

    def test_movements_and_discrepancies_merge(self, topo):
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        kwargs = dict(stopping=[PotentialFractionBelow(1e-2), MaxRounds(500)], record="full")
        single = EnsembleSimulator(RandomPartnerBalancer(), **kwargs).run(
            loads, seed=9, replicas=5
        )
        sharded = run_sharded_ensemble(
            RandomPartnerBalancer(), loads, seed=9, replicas=5, workers=2, **kwargs
        )
        assert np.allclose(single.movements_matrix, sharded.movements_matrix, rtol=1e-12)
        assert np.allclose(
            single.discrepancies_matrix, sharded.discrepancies_matrix, rtol=1e-12
        )
        assert np.allclose(
            single.total_net_movements(), sharded.total_net_movements(), rtol=1e-12
        )

    def test_workers_one_runs_in_process(self, topo):
        loads = point_load(topo.n, discrete=False)
        trace = run_sharded_ensemble(
            DiffusionBalancer(topo), loads, seed=0, replicas=3, workers=1,
            stopping=[MaxRounds(4)],
        )
        assert trace.replicas == 3
        assert trace.rounds == 4

    def test_explicit_generators(self, topo):
        loads = point_load(topo.n, discrete=False)
        rngs = spawn_rngs(21, 4)
        trace = run_sharded_ensemble(
            RandomPartnerBalancer(), loads, seed=rngs, workers=2, stopping=[MaxRounds(6)]
        )
        single = EnsembleSimulator(RandomPartnerBalancer(), stopping=[MaxRounds(6)]).run(
            loads, seed=spawn_rngs(21, 4)
        )
        assert np.array_equal(single.final_loads, trace.final_loads)

    def test_singleton_shards_use_batched_statistics(self, topo, monkeypatch):
        """A 1-replica shard must not dispatch to the serial engine: its
        statistics would switch to the centered potential formula and
        stopping decisions would depend on how the batch split across
        workers (regression)."""
        from repro.simulation import sharding
        from repro.simulation.ensemble import EnsembleSimulator

        def boom(self, loads, rng):  # pragma: no cover - failure path
            raise AssertionError("singleton shard dispatched to the serial engine")

        monkeypatch.setattr(EnsembleSimulator, "_run_singleton", boom)
        payload = (
            DiffusionBalancer(topo),
            point_load(topo.n, discrete=False),
            spawn_rngs(0, 1),
            [MaxRounds(3)],
            "auto", False, True, 1e-6,
            False,  # one slice of a split batch, not the whole batch
        )
        trace = sharding.run_shard_payload(payload)  # in-process, same code the pool runs
        assert trace.replicas == 1 and trace.rounds == 3

    def test_singleton_shards_formula_consistent_under_cancellation(self, topo):
        """The reviewer's adversarial case: loads ~1e8 with ~1e-2 spread make
        the batched shifted potential clamp to ~0 while the serial centered
        formula resolves ~1e-3 — pre-fix, 1-replica shards (serial formula)
        ran tens of rounds while the unsharded run stopped immediately.
        Post-fix both decompositions use the batched formula and stop within
        an ulp-tie of each other (exact equality is unattainable here: block
        width changes summation order, and cancellation amplifies the ulp)."""
        from repro.simulation.stopping import PotentialBelow

        loads = 1e8 + np.random.default_rng(0).uniform(-1e-2, 1e-2, topo.n)
        for workers in (1, 3):  # workers=3 over B=3 -> three 1-replica shards
            trace = run_sharded_ensemble(
                DiffusionBalancer(topo), loads, seed=2, replicas=3,
                workers=workers, stopping=[PotentialBelow(1e-7), MaxRounds(500)],
            )
            assert all(r.startswith("potential<=") for r in trace.stopped_by), workers
            assert trace.rounds_vector.max() <= 2, (workers, trace.rounds_vector)

    def test_replica_loads_mismatch_rejected(self, topo):
        with pytest.raises(ValueError, match="replicas"):
            run_sharded_ensemble(
                DiffusionBalancer(topo), np.ones((3, topo.n)), seed=0, replicas=5, workers=2
            )


class TestShardTransports:
    """The shard pool runs over the transport seam; wires are equivalent."""

    @pytest.mark.parametrize("transport", ["mp-pipe", "tcp"])
    def test_tcp_and_pipe_shards_bit_identical(self, transport):
        from repro.graphs import generators as g

        topo = g.torus_2d(5, 5)
        loads = point_load(topo.n, total=100 * topo.n, discrete=True)
        single = EnsembleSimulator(
            DiffusionBalancer(topo, mode="discrete"),
            stopping=[MaxRounds(12)], keep_snapshots=True, serial_singleton=False,
        ).run(loads, seed=3, replicas=6)
        sharded = run_sharded_ensemble(
            DiffusionBalancer(topo, mode="discrete"), loads, seed=3, replicas=6,
            workers=3, stopping=[MaxRounds(12)], keep_snapshots=True,
            transport=transport,
        )
        assert np.array_equal(single.final_loads, sharded.final_loads)
        for t in range(single.recorded_states):
            assert np.array_equal(single.snapshots[t], sharded.snapshots[t]), f"round {t}"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_loopback_transport_rejected(self, workers):
        """Invalid transports fail on the call that introduces them —
        the single-shard early return must not skip validation."""
        from repro.graphs import generators as g

        topo = g.torus_2d(4, 4)
        with pytest.raises(ValueError, match="transport"):
            run_sharded_ensemble(
                DiffusionBalancer(topo), point_load(topo.n, discrete=False),
                replicas=4, workers=workers, stopping=[MaxRounds(2)],
                transport="loopback",
            )

    def test_shard_payloads_pure_function_of_inputs(self):
        """Payload derivation is independent of execution venue: the
        same request yields the same shard cuts and RNG states — the
        property that makes local and dispatched shards interchangeable."""
        from repro.graphs import generators as g
        from repro.simulation.sharding import shard_payloads

        topo = g.torus_2d(4, 4)
        loads = point_load(topo.n, discrete=False)
        a = shard_payloads(DiffusionBalancer(topo), loads, seed=7, replicas=10, workers=4)
        b = shard_payloads(DiffusionBalancer(topo), loads, seed=7, replicas=10, workers=4)
        assert len(a) == len(b) == 4
        for pa, pb in zip(a, b):
            assert np.array_equal(pa[1], pb[1])  # shard loads
            assert len(pa[2]) == len(pb[2])
            for ra, rb in zip(pa[2], pb[2]):
                sa = ra.bit_generator.state
                sb = rb.bit_generator.state
                assert sa == sb


class TestShardPayloadHygiene:
    def test_topology_pickles_without_derived_caches(self):
        import pickle

        from repro.graphs import generators as g
        from repro.core.operators import edge_operator

        topo = g.torus_2d(8, 8)
        # Warm every heavy cache a shard payload must NOT carry.
        edge_operator(topo).incidence()
        _ = topo.degrees, topo.indptr, topo.edge_denominators
        blob = pickle.dumps(topo)
        bare = pickle.dumps(g.torus_2d(8, 8))
        assert len(blob) <= len(bare) * 1.05, "warmed caches leaked into the pickle"
        clone = pickle.loads(blob)
        assert clone == topo
        assert not clone.edges.flags.writeable
        assert np.array_equal(clone.degrees, topo.degrees)  # rebuilt on demand


class TestMergeEnsembleTraces:
    def test_single_trace_passthrough(self):
        from repro.graphs import generators as g

        topo = g.torus_2d(4, 4)
        trace = EnsembleSimulator(DiffusionBalancer(topo), stopping=[MaxRounds(3)]).run(
            point_load(topo.n, discrete=False), seed=0, replicas=2
        )
        assert merge_ensemble_traces([trace]) is trace

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_ensemble_traces([])

    def test_unequal_lengths_pad_frozen_rows(self):
        """Shards stopping at different rounds merge like one frozen batch."""
        from repro.graphs import generators as g

        topo = g.torus_2d(4, 4)
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        rules = lambda: [PotentialFractionBelow(1e-4), MaxRounds(2_000)]
        rngs = spawn_rngs(5, 6)
        single = EnsembleSimulator(RandomPartnerBalancer(), stopping=rules()).run(
            loads, seed=spawn_rngs(5, 6)
        )
        parts = [
            EnsembleSimulator(RandomPartnerBalancer(), stopping=rules()).run(
                loads, seed=rngs[a:b]
            )
            for a, b in ((0, 2), (2, 4), (4, 6))
        ]
        merged = merge_ensemble_traces(parts)
        assert merged.replicas == 6
        assert np.array_equal(single.rounds_vector, merged.rounds_vector)
        assert single.stopped_by == merged.stopped_by
        assert merged.potentials_matrix.shape == single.potentials_matrix.shape
        assert np.allclose(single.potentials_matrix, merged.potentials_matrix, rtol=1e-12)
        assert np.array_equal(single.final_loads, merged.final_loads)


class TestShardedMonteCarlo:
    def test_sharded_equals_vectorized(self):
        from repro.experiments.e08_random_continuous import trial_drop_and_rounds

        kw = {"n": 48, "c": 1.0, "max_rounds": 300}
        vec = monte_carlo(trial_drop_and_rounds, trials=9, root_seed=3,
                          workers="vectorized", trial_kwargs=kw)
        sha = monte_carlo(trial_drop_and_rounds, trials=9, root_seed=3,
                          workers="3xvectorized", trial_kwargs=kw)
        assert vec.trials == sha.trials == 9
        for key in vec.samples:
            assert np.allclose(
                vec.samples[key], sha.samples[key], rtol=1e-12, equal_nan=True
            ), key
        # Integer-valued metrics must agree exactly.
        for key in ("rounds_to_target", "success_at_bound"):
            assert np.array_equal(
                np.nan_to_num(vec.samples[key], nan=-1.0),
                np.nan_to_num(sha.samples[key], nan=-1.0),
            ), key

    def test_sharded_run_batch_trial_order(self):
        got = sharded_run_batch(_IndexTrial(), trials=7, root_seed=13, workers=3)
        want = np.asarray([r.random() for r in spawn_rngs(13, 7)])
        assert np.array_equal(got["draw"], want)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            sharded_run_batch(_BrokenTrial(), trials=4, root_seed=0, workers=2)

    def test_trial_without_run_batch_degrades_to_pool(self):
        from repro.simulation.montecarlo import trial_rngs

        got = monte_carlo(_plain_trial, trials=5, root_seed=1, workers="2xvectorized")
        want = np.asarray([r.random() for r in trial_rngs(1, 5)])
        assert np.allclose(got.samples["value"], want)


class TestSweepWorkers:
    def test_sharded_sweep_matches_in_process(self):
        from repro.simulation.sweep import sweep

        _, a = sweep(["torus:4x4"], ["random-partner", "matching-de"],
                     eps=1e-2, seed=5, replicas=4, workers=1)
        _, b = sweep(["torus:4x4"], ["random-partner", "matching-de"],
                     eps=1e-2, seed=5, replicas=4, workers="2xvectorized")
        for cell_a, cell_b in zip(a, b):
            assert cell_a.rounds == cell_b.rounds
            assert cell_a.stopped_by == cell_b.stopped_by
            assert cell_a.final_potential == pytest.approx(cell_b.final_potential, rel=1e-9)
            assert cell_a.total_movement == pytest.approx(cell_b.total_movement, rel=1e-9)
