"""Unit tests for the lockstep ensemble engine."""

import numpy as np
import pytest

from repro.core.diffusion import DiffusionBalancer
from repro.core.random_partner import RandomPartnerBalancer
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.initial import point_load
from repro.simulation.montecarlo import trial_rngs
from repro.simulation.stopping import (
    DiscrepancyBelow,
    MaxRounds,
    PotentialFractionBelow,
    Stagnation,
    StoppingRule,
)


class TestRunBasics:
    def test_lockstep_round_counts(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(9)])
        trace = ens.run(point_load(torus.n, discrete=False), seed=0, replicas=4)
        assert trace.replicas == 4
        assert trace.rounds == 9
        assert trace.rounds_vector.tolist() == [9, 9, 9, 9]
        assert trace.stopped_by == ["max-rounds(9)"] * 4
        assert trace.final_loads.shape == (4, torus.n)

    def test_zero_rounds(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(0)])
        trace = ens.run(point_load(torus.n, discrete=False), seed=0, replicas=3)
        assert trace.rounds == 0
        assert trace.potentials_matrix.shape == (1, 3)

    def test_default_max_rounds_injected(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus))
        assert any(isinstance(r, MaxRounds) for r in ens.stopping)

    def test_single_replica_matches_simulator(self, torus):
        loads = point_load(torus.n, discrete=False)
        serial = Simulator(DiffusionBalancer(torus), stopping=[MaxRounds(7)], keep_snapshots=True)
        strace = serial.run(loads, spawn_rngs(5, 1)[0])
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(7)])
        etrace = ens.run(loads, seed=5)  # replicas defaults to 1
        assert etrace.replicas == 1
        assert np.array_equal(strace.snapshots[-1], etrace.final_loads[0])

    def test_single_replica_snapshots_not_aliased(self, torus):
        """B=1 snapshots must be copies, not views of the recycled
        ping-pong buffers (regression: every round matches serial)."""
        loads = point_load(torus.n, discrete=False)
        strace = Simulator(
            DiffusionBalancer(torus), stopping=[MaxRounds(6)], keep_snapshots=True
        ).run(loads, spawn_rngs(5, 1)[0])
        etrace = EnsembleSimulator(
            DiffusionBalancer(torus), stopping=[MaxRounds(6)], keep_snapshots=True
        ).run(loads, seed=5)
        for t, snap in enumerate(strace.snapshots):
            assert np.array_equal(snap, etrace.snapshots[t][0]), f"round {t}"

    def test_singleton_dispatches_to_serial_engine(self, torus, monkeypatch):
        """B=1 runs route to the serial Simulator (perf: nothing to amortize)."""
        calls = []
        orig = EnsembleSimulator._run_singleton

        def spy(self, loads, rng):
            calls.append(loads.shape)
            return orig(self, loads, rng)

        monkeypatch.setattr(EnsembleSimulator, "_run_singleton", spy)
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(5)])
        trace = ens.run(point_load(torus.n, discrete=False), seed=0)
        assert calls == [(torus.n,)]
        assert trace.replicas == 1
        assert trace.rounds == 5

    def test_singleton_dispatch_can_be_disabled(self, torus, monkeypatch):
        called = []
        monkeypatch.setattr(
            EnsembleSimulator, "_run_singleton",
            lambda self, loads, rng: called.append(1),
        )
        ens = EnsembleSimulator(
            DiffusionBalancer(torus), stopping=[MaxRounds(5)], serial_singleton=False
        )
        trace = ens.run(point_load(torus.n, discrete=False), seed=0)
        assert not called
        assert trace.rounds == 5

    def test_singleton_discrete_final_loads_int(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus, mode="discrete"), stopping=[MaxRounds(6)])
        trace = ens.run(point_load(torus.n, total=64_000), seed=1)
        assert trace.final_loads.dtype == np.int64
        serial = Simulator(
            DiffusionBalancer(torus, mode="discrete"), stopping=[MaxRounds(6)], keep_snapshots=True
        ).run(point_load(torus.n, total=64_000), spawn_rngs(1, 1)[0])
        assert np.array_equal(trace.final_loads[0], serial.snapshots[-1])

    def test_singleton_runs_unbatchable_balancer(self, torus):
        """With serial dispatch, B=1 ensembles work for *any* balancer."""
        from repro.core.protocols import Balancer

        class _Plain(Balancer):
            name = "plain"

            def step(self, loads, rng):
                return loads.copy()

        trace = EnsembleSimulator(_Plain(), stopping=[MaxRounds(3)]).run(np.ones(4), seed=0)
        assert trace.replicas == 1
        assert trace.rounds == 3

    def test_singleton_stopping_and_stats(self, torus):
        rules = [PotentialFractionBelow(1e-3), MaxRounds(5_000)]
        ens = EnsembleSimulator(RandomPartnerBalancer(), stopping=rules)
        trace = ens.run(point_load(32, total=3200, discrete=False), seed=4)
        assert trace.stopped_by[0].startswith("potential<=")
        assert trace.potentials_matrix.shape == (trace.rounds + 1, 1)
        assert trace.load_sums_matrix.shape == (trace.rounds + 1, 1)
        t = trace.replica_trace(0)
        assert t.rounds == trace.rounds

    def test_spawned_rngs_match_montecarlo_derivation(self):
        a = [r.integers(0, 1 << 30) for r in spawn_rngs(42, 3)]
        b = [r.integers(0, 1 << 30) for r in trial_rngs(42, 3)]
        assert a == b

    def test_explicit_generator_sequence(self, torus):
        loads = point_load(torus.n, discrete=False)
        rngs = spawn_rngs(11, 3)
        ens = EnsembleSimulator(RandomPartnerBalancer(), stopping=[MaxRounds(5)])
        trace = ens.run(loads, seed=rngs)
        assert trace.replicas == 3

    def test_generator_iterator_accepted(self, torus):
        loads = point_load(torus.n, discrete=False)
        ens = EnsembleSimulator(RandomPartnerBalancer(), stopping=[MaxRounds(3)])
        trace = ens.run(loads, seed=iter(spawn_rngs(11, 3)))
        assert trace.replicas == 3

    def test_partner_batch_exposes_realized_concurrency(self, torus):
        from repro.core.random_partner import link_degrees

        bal = RandomPartnerBalancer()
        ens = EnsembleSimulator(bal, stopping=[MaxRounds(4)])
        ens.run(point_load(torus.n, discrete=False), seed=2, replicas=3)
        assert isinstance(bal.last_links, list) and len(bal.last_links) == 3
        for links, deg in zip(bal.last_links, bal.last_degrees):
            assert np.array_equal(deg, link_degrees(torus.n, links))

    def test_generator_count_mismatch_rejected(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(2)])
        with pytest.raises(ValueError, match="generators"):
            ens.run(point_load(torus.n, discrete=False), seed=spawn_rngs(0, 2), replicas=3)

    def test_unbatchable_balancer_rejected(self):
        from repro.core.protocols import Balancer

        class _Plain(Balancer):
            name = "plain"

            def step(self, loads, rng):
                return loads.copy()

        ens = EnsembleSimulator(_Plain(), stopping=[MaxRounds(1)])
        with pytest.raises(TypeError, match="batched"):
            ens.run(np.ones(4), seed=0, replicas=2)

    def test_bad_record_mode_rejected(self, torus):
        with pytest.raises(ValueError, match="record"):
            EnsembleSimulator(DiffusionBalancer(torus), record="everything")


class TestPerReplicaStopping:
    def test_replicas_stop_independently(self):
        """Random-partner replicas reach the target at different rounds."""
        n = 32
        loads = point_load(n, total=100 * n, discrete=False)
        ens = EnsembleSimulator(
            RandomPartnerBalancer(),
            stopping=[PotentialFractionBelow(1e-3), MaxRounds(10_000)],
        )
        trace = ens.run(loads, seed=7, replicas=6)
        rounds = trace.rounds_vector
        assert (rounds > 0).all()
        assert len(set(rounds.tolist())) > 1, "expected replica-dependent stop rounds"
        assert all(r.startswith("potential<=") for r in trace.stopped_by)
        # Frozen replicas keep their stopped-state potential.
        pots = trace.potentials_matrix
        for b in range(6):
            stop = int(rounds[b])
            assert pots[stop, b] <= 1e-3 * pots[0, b]
            assert np.all(pots[stop:, b] == pots[stop, b])

    def test_frozen_replica_matches_serial_final(self):
        n = 32
        loads = point_load(n, total=100 * n, discrete=False)
        seed = 3
        ens = EnsembleSimulator(
            RandomPartnerBalancer(), stopping=[PotentialFractionBelow(1e-2), MaxRounds(10_000)]
        )
        trace = ens.run(loads, seed=seed, replicas=4)
        rngs = spawn_rngs(seed, 4)
        for b in range(4):
            serial = Simulator(
                RandomPartnerBalancer(),
                stopping=[PotentialFractionBelow(1e-2), MaxRounds(10_000)],
                keep_snapshots=True,
            ).run(loads, rngs[b])
            assert serial.rounds == trace.rounds_vector[b]
            assert np.array_equal(serial.snapshots[-1], trace.final_loads[b])

    def test_stagnation_batch_fires(self, torus):
        # A perfectly balanced discrete system makes no progress: the
        # stagnation rule must end every replica before the round cap.
        loads = np.full(torus.n, 7, dtype=np.int64)
        ens = EnsembleSimulator(
            DiffusionBalancer(torus, mode="discrete"),
            stopping=[Stagnation(patience=4), MaxRounds(500)],
        )
        trace = ens.run(loads, seed=0, replicas=3)
        assert trace.rounds == 4
        assert trace.stopped_by == ["stagnation(4)"] * 3

    def test_discrepancy_rule_auto_enables_recording(self, torus):
        loads = point_load(torus.n, total=1600, discrete=False)
        ens = EnsembleSimulator(
            DiffusionBalancer(torus), stopping=[DiscrepancyBelow(1e-6), MaxRounds(5000)]
        )
        trace = ens.run(loads, seed=0, replicas=2)
        assert trace.record_discrepancies
        assert (trace.last_discrepancies <= 1e-6).all()

    def test_custom_rule_without_batch_form_rejected(self, torus):
        class _Odd(StoppingRule):
            def should_stop(self, trace):
                return False

        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[_Odd(), MaxRounds(3)])
        with pytest.raises(NotImplementedError, match="batched"):
            ens.run(point_load(torus.n, discrete=False), seed=0, replicas=2)


class TestRecordingModes:
    def test_light_mode_skips_discrepancies(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(3)], record="light")
        trace = ens.run(point_load(torus.n, discrete=False), seed=0, replicas=2)
        with pytest.raises(ValueError):
            trace.discrepancies_matrix
        with pytest.raises(ValueError):
            trace.movements_matrix

    def test_full_mode_matches_serial_trace_stats(self, torus):
        loads = point_load(torus.n, total=1600, discrete=True)
        ens = EnsembleSimulator(
            DiffusionBalancer(torus, mode="discrete"), stopping=[MaxRounds(20)], record="full"
        )
        trace = ens.run(loads, seed=0, replicas=2)
        serial = Simulator(DiffusionBalancer(torus, mode="discrete"), stopping=[MaxRounds(20)]).run(
            loads, spawn_rngs(0, 2)[0]
        )
        rep = trace.replica_trace(0)
        assert rep.rounds == serial.rounds
        assert np.allclose(rep.potential_array, serial.potential_array, rtol=1e-9, atol=1e-6)
        assert np.array_equal(rep.net_movements, serial.net_movements)
        assert rep.discrepancies == serial.discrepancies
        assert np.allclose(trace.total_net_movements()[0], serial.total_net_movement())

    def test_summary_shape(self, torus):
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(4)])
        trace = ens.run(point_load(torus.n, discrete=False), seed=0, replicas=3)
        s = trace.summary()
        assert s["replicas"] == 3
        assert s["rounds_min"] == s["rounds_max"] == 4
        assert s["stopped_by"] == {"max-rounds(4)": 3}

    def test_rounds_to_potential_vector(self, torus):
        loads = point_load(torus.n, total=1600, discrete=False)
        ens = EnsembleSimulator(DiffusionBalancer(torus), stopping=[MaxRounds(400)])
        trace = ens.run(loads, seed=0, replicas=2)
        serial = Simulator(DiffusionBalancer(torus), stopping=[MaxRounds(400)]).run(loads, 0)
        threshold = 0.01 * serial.initial_potential
        got = trace.rounds_to_potential(threshold)
        assert got[0] == got[1] == serial.rounds_to_potential(threshold)


class TestConservationAudit:
    def test_leak_names_replica(self, torus):
        from repro.core.protocols import Balancer

        class _LeakyBatch(Balancer):
            name = "leaky-batch"
            mode = "continuous"
            supports_batch = True

            def step(self, loads, rng):  # pragma: no cover - not used
                return loads.copy()

            def step_batch(self, loads, rngs, out=None):
                new = loads.copy()
                new[0, 1] += 5.0  # replica 1 gains mass
                return new

        ens = EnsembleSimulator(_LeakyBatch(), stopping=[MaxRounds(3)])
        with pytest.raises(AssertionError, match="replica 1"):
            ens.run(np.full(8, 4.0), seed=0, replicas=3)

    def test_audit_can_be_disabled(self, torus):
        ens = EnsembleSimulator(
            DiffusionBalancer(torus), stopping=[MaxRounds(2)], check_conservation=False
        )
        trace = ens.run(point_load(torus.n, discrete=False), seed=0, replicas=2)
        assert trace.rounds == 2
