"""Unit tests for Monte-Carlo replication."""

import numpy as np
import pytest

from repro.simulation.montecarlo import MonteCarloResult, monte_carlo, trial_rngs


def scalar_trial(rng):
    return float(rng.uniform())


def dict_trial(rng, offset=0.0):
    u = rng.uniform()
    return {"u": u + offset, "indicator": 1.0 if u > 0.5 else 0.0}


def partition_aware_trial(rng, partitions=None):
    """Trial that reports the partitions spec it was handed."""
    from repro.graphs.partition import parse_partitions

    blocks = parse_partitions(partitions)[0] if partitions is not None else 0
    return {"blocks": float(blocks), "u": float(rng.uniform())}


class TestExecution:
    def test_scalar_trials_aggregate(self):
        res = monte_carlo(scalar_trial, trials=50, root_seed=1)
        assert res.trials == 50
        assert 0.0 < res.mean() < 1.0
        assert res.samples["value"].shape == (50,)

    def test_dict_trials_aggregate(self):
        res = monte_carlo(dict_trial, trials=30, root_seed=2)
        assert set(res.samples) == {"u", "indicator"}
        assert 0 <= res.fraction_true("indicator") <= 1

    def test_kwargs_forwarded(self):
        res = monte_carlo(dict_trial, trials=10, root_seed=3, trial_kwargs={"offset": 100.0})
        assert res.mean("u") > 100.0

    def test_reproducible(self):
        a = monte_carlo(scalar_trial, trials=20, root_seed=7)
        b = monte_carlo(scalar_trial, trials=20, root_seed=7)
        assert np.array_equal(a.samples["value"], b.samples["value"])

    def test_trials_independent(self):
        res = monte_carlo(scalar_trial, trials=20, root_seed=7)
        assert np.unique(res.samples["value"]).size == 20

    def test_parallel_equals_serial(self):
        serial = monte_carlo(scalar_trial, trials=16, root_seed=5, workers=1)
        parallel = monte_carlo(scalar_trial, trials=16, root_seed=5, workers=4)
        assert np.array_equal(serial.samples["value"], parallel.samples["value"])

    def test_trial_rngs_match_pool_streams(self):
        rngs = trial_rngs(9, 3)
        direct = [float(r.uniform()) for r in rngs]
        via_mc = monte_carlo(scalar_trial, trials=3, root_seed=9)
        assert direct == pytest.approx(via_mc.samples["value"].tolist())

    def test_at_least_one_trial(self):
        with pytest.raises(ValueError):
            monte_carlo(scalar_trial, trials=0)

    def test_partitions_forwarded_to_trial(self):
        res = monte_carlo(partition_aware_trial, trials=4, root_seed=1, partitions="4:bfs")
        assert (res.samples["blocks"] == 4.0).all()

    def test_partitions_default_not_forwarded(self):
        res = monte_carlo(partition_aware_trial, trials=4, root_seed=1)
        assert (res.samples["blocks"] == 0.0).all()

    def test_partitions_do_not_change_streams(self):
        plain = monte_carlo(partition_aware_trial, trials=8, root_seed=5)
        parted = monte_carlo(partition_aware_trial, trials=8, root_seed=5, partitions=2)
        assert np.array_equal(plain.samples["u"], parted.samples["u"])

    def test_bad_partitions_spec_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            monte_carlo(partition_aware_trial, trials=2, partitions="2:metis")
        with pytest.raises(ValueError, match="partitions must be >= 1"):
            monte_carlo(partition_aware_trial, trials=2, partitions=0)

    def test_bad_workers_value_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            monte_carlo(scalar_trial, trials=3, workers="gpu")


class _BatchableTrial:
    """Serial callable plus the vectorized `run_batch` backend."""

    def __call__(self, rng, offset=0.0):
        return float(rng.uniform()) + offset

    def run_batch(self, rngs, offset=0.0):
        return {"value": np.asarray([float(r.uniform()) + offset for r in rngs])}


class _BadBatchTrial(_BatchableTrial):
    def run_batch(self, rngs, offset=0.0):
        return {"value": np.zeros(1)}  # wrong length


class TestVectorizedBackend:
    def test_vectorized_equals_serial(self):
        trial = _BatchableTrial()
        serial = monte_carlo(trial, trials=12, root_seed=4, workers=1)
        vec = monte_carlo(trial, trials=12, root_seed=4, workers="vectorized")
        assert np.array_equal(serial.samples["value"], vec.samples["value"])

    def test_vectorized_forwards_kwargs(self):
        trial = _BatchableTrial()
        vec = monte_carlo(
            trial, trials=5, root_seed=4, workers="vectorized", trial_kwargs={"offset": 10.0}
        )
        assert vec.mean() > 10.0

    def test_vectorized_falls_back_without_run_batch(self):
        serial = monte_carlo(scalar_trial, trials=8, root_seed=2, workers=1)
        vec = monte_carlo(scalar_trial, trials=8, root_seed=2, workers="vectorized")
        assert np.array_equal(serial.samples["value"], vec.samples["value"])

    def test_wrong_sample_count_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            monte_carlo(_BadBatchTrial(), trials=4, workers="vectorized")

    def test_e08_trial_vectorized_matches_serial(self):
        from repro.experiments.e08_random_continuous import trial_drop_and_rounds

        kw = {"n": 32, "c": 1.0, "max_rounds": 300}
        serial = monte_carlo(trial_drop_and_rounds, trials=4, root_seed=6, workers=1, trial_kwargs=kw)
        vec = monte_carlo(
            trial_drop_and_rounds, trials=4, root_seed=6, workers="vectorized", trial_kwargs=kw
        )
        assert np.array_equal(
            serial.samples["rounds_to_target"], vec.samples["rounds_to_target"], equal_nan=True
        )
        assert np.allclose(serial.samples["mean_ratio"], vec.samples["mean_ratio"], rtol=1e-9)

    def test_e09_trial_vectorized_matches_serial(self):
        from repro.experiments.e09_random_discrete import trial_discrete_partner

        kw = {"n": 32, "total": 3300, "c": 1.0, "max_rounds": 200}
        serial = monte_carlo(trial_discrete_partner, trials=4, root_seed=6, workers=1, trial_kwargs=kw)
        vec = monte_carlo(
            trial_discrete_partner, trials=4, root_seed=6, workers="vectorized", trial_kwargs=kw
        )
        for key in serial.samples:
            assert np.allclose(
                serial.samples[key], vec.samples[key], rtol=1e-9, equal_nan=True
            ), key


class TestStatistics:
    def make(self, values):
        return MonteCarloResult(samples={"value": np.asarray(values, dtype=float)}, trials=len(values))

    def test_mean_std(self):
        r = self.make([1, 2, 3, 4])
        assert r.mean() == pytest.approx(2.5)
        assert r.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_quantile_minmax(self):
        r = self.make([1, 2, 3, 4])
        assert r.quantile(0.5) == pytest.approx(2.5)
        assert r.min() == 1 and r.max() == 4

    def test_single_trial_std_zero(self):
        r = self.make([2.0])
        assert r.std() == 0.0
        assert r.confidence_halfwidth() == float("inf")

    def test_confidence_halfwidth_shrinks(self):
        wide = self.make([0, 1] * 5)
        wider = self.make([0, 1] * 50)
        assert wider.confidence_halfwidth() < wide.confidence_halfwidth()
