"""Unit tests for Monte-Carlo replication."""

import numpy as np
import pytest

from repro.simulation.montecarlo import MonteCarloResult, monte_carlo, trial_rngs


def scalar_trial(rng):
    return float(rng.uniform())


def dict_trial(rng, offset=0.0):
    u = rng.uniform()
    return {"u": u + offset, "indicator": 1.0 if u > 0.5 else 0.0}


class TestExecution:
    def test_scalar_trials_aggregate(self):
        res = monte_carlo(scalar_trial, trials=50, root_seed=1)
        assert res.trials == 50
        assert 0.0 < res.mean() < 1.0
        assert res.samples["value"].shape == (50,)

    def test_dict_trials_aggregate(self):
        res = monte_carlo(dict_trial, trials=30, root_seed=2)
        assert set(res.samples) == {"u", "indicator"}
        assert 0 <= res.fraction_true("indicator") <= 1

    def test_kwargs_forwarded(self):
        res = monte_carlo(dict_trial, trials=10, root_seed=3, trial_kwargs={"offset": 100.0})
        assert res.mean("u") > 100.0

    def test_reproducible(self):
        a = monte_carlo(scalar_trial, trials=20, root_seed=7)
        b = monte_carlo(scalar_trial, trials=20, root_seed=7)
        assert np.array_equal(a.samples["value"], b.samples["value"])

    def test_trials_independent(self):
        res = monte_carlo(scalar_trial, trials=20, root_seed=7)
        assert np.unique(res.samples["value"]).size == 20

    def test_parallel_equals_serial(self):
        serial = monte_carlo(scalar_trial, trials=16, root_seed=5, workers=1)
        parallel = monte_carlo(scalar_trial, trials=16, root_seed=5, workers=4)
        assert np.array_equal(serial.samples["value"], parallel.samples["value"])

    def test_trial_rngs_match_pool_streams(self):
        rngs = trial_rngs(9, 3)
        direct = [float(r.uniform()) for r in rngs]
        via_mc = monte_carlo(scalar_trial, trials=3, root_seed=9)
        assert direct == pytest.approx(via_mc.samples["value"].tolist())

    def test_at_least_one_trial(self):
        with pytest.raises(ValueError):
            monte_carlo(scalar_trial, trials=0)


class TestStatistics:
    def make(self, values):
        return MonteCarloResult(samples={"value": np.asarray(values, dtype=float)}, trials=len(values))

    def test_mean_std(self):
        r = self.make([1, 2, 3, 4])
        assert r.mean() == pytest.approx(2.5)
        assert r.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_quantile_minmax(self):
        r = self.make([1, 2, 3, 4])
        assert r.quantile(0.5) == pytest.approx(2.5)
        assert r.min() == 1 and r.max() == 4

    def test_single_trial_std_zero(self):
        r = self.make([2.0])
        assert r.std() == 0.0
        assert r.confidence_halfwidth() == float("inf")

    def test_confidence_halfwidth_shrinks(self):
        wide = self.make([0, 1] * 5)
        wider = self.make([0, 1] * 50)
        assert wider.confidence_halfwidth() < wide.confidence_halfwidth()
