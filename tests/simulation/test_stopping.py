"""Unit tests for stopping rules."""

import numpy as np
import pytest

from repro.simulation.stopping import (
    DiscrepancyBelow,
    MaxRounds,
    PotentialBelow,
    PotentialFractionBelow,
    Stagnation,
    first_satisfied,
)
from repro.simulation.trace import Trace


def make_trace(potentials, discrepancies=None):
    """Build a trace with prescribed potentials via crafted 2-node loads."""
    t = Trace()
    for i, phi in enumerate(potentials):
        # two nodes at +-sqrt(phi/2) around mean: potential exactly phi
        half = np.sqrt(phi / 2)
        t.record(np.asarray([10 + half, 10 - half]))
    return t


class TestMaxRounds:
    def test_fires_at_limit(self):
        tr = make_trace([100, 50, 25])
        assert not MaxRounds(3).should_stop(tr)
        assert MaxRounds(2).should_stop(tr)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MaxRounds(-1)

    def test_reason_mentions_limit(self):
        assert "7" in MaxRounds(7).reason


class TestPotentialRules:
    def test_potential_below(self):
        tr = make_trace([100, 10])
        assert PotentialBelow(10.5).should_stop(tr)
        assert not PotentialBelow(9).should_stop(tr)

    def test_fraction_below(self):
        tr = make_trace([100, 0.5])
        assert PotentialFractionBelow(0.01).should_stop(tr)
        assert not PotentialFractionBelow(0.001).should_stop(tr)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            PotentialFractionBelow(0.0)
        with pytest.raises(ValueError):
            PotentialFractionBelow(1.0)


class TestDiscrepancy:
    def test_fires(self):
        tr = Trace()
        tr.record(np.asarray([0.0, 8.0]))
        assert DiscrepancyBelow(10).should_stop(tr)
        assert not DiscrepancyBelow(7.9).should_stop(tr)


class TestStagnation:
    def test_detects_flat_tail(self):
        tr = make_trace([100] * 12)
        assert Stagnation(patience=10).should_stop(tr)

    def test_not_triggered_by_progress(self):
        tr = make_trace([100 / (2**i) for i in range(12)])
        assert not Stagnation(patience=10).should_stop(tr)

    def test_needs_enough_history(self):
        tr = make_trace([100, 100])
        assert not Stagnation(patience=10).should_stop(tr)

    def test_zero_potential_counts_as_stagnant(self):
        tr = make_trace([0.0] * 12)
        assert Stagnation(patience=10).should_stop(tr)

    def test_validation(self):
        with pytest.raises(ValueError):
            Stagnation(patience=0)
        with pytest.raises(ValueError):
            Stagnation(min_rel_drop=-0.1)


class TestFirstSatisfied:
    def test_order_respected(self):
        tr = make_trace([100, 1])
        rules = [PotentialBelow(5), MaxRounds(1)]
        assert first_satisfied(rules, tr) is rules[0]

    def test_none_when_unsatisfied(self):
        tr = make_trace([100, 50])
        assert first_satisfied([PotentialBelow(1), MaxRounds(10)], tr) is None
