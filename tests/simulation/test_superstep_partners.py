"""Unit tests for the Algorithm 2 message-passing protocol."""

import numpy as np
import pytest

from repro.core.random_partner import (
    partner_round_continuous,
    partner_round_discrete,
    sample_partners,
)
from repro.simulation.superstep import SuperstepPartnerNetwork, run_superstep_partners


class TestValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            SuperstepPartnerNetwork(np.asarray([1.0]))

    def test_discrete_needs_integers(self):
        with pytest.raises(ValueError, match="integer"):
            SuperstepPartnerNetwork(np.ones(4), discrete=True)

    def test_self_pick_rejected(self):
        net = SuperstepPartnerNetwork(np.ones(4))
        with pytest.raises(ValueError, match="pick itself"):
            net.round(np.asarray([0, 0, 1, 2]))

    def test_pick_shape_checked(self):
        net = SuperstepPartnerNetwork(np.ones(4))
        with pytest.raises(ValueError):
            net.round(np.asarray([1, 2, 3]))


class TestProtocolSemantics:
    def test_mutual_picks_merge_into_one_link(self):
        """i picks j and j picks i: one link, degrees 1 and 1."""
        net = SuperstepPartnerNetwork(np.asarray([8.0, 0.0, 4.0, 4.0]))
        net.round(np.asarray([1, 0, 3, 2]))
        # link (0,1): degrees 1,1 -> transfer 8/4 = 2
        assert net.loads().tolist() == [6.0, 2.0, 4.0, 4.0]

    def test_popular_node_degree_counts_all_links(self):
        """Three nodes pick node 0: node 0 has degree 4 (3 in + own pick)."""
        loads = np.asarray([100.0, 0.0, 0.0, 0.0, 0.0])
        net = SuperstepPartnerNetwork(loads)
        # nodes 1..3 pick 0; node 0 picks 4; node 4 picks 3.
        net.round(np.asarray([4, 0, 0, 0, 3]))
        node0 = net.nodes[0]
        assert node0.degree == 4
        # each link (0,j): denom = 4*max(4, d_j); all transfers from 0.
        out = net.loads()
        assert out[0] < 100.0
        assert out.sum() == pytest.approx(100.0)


class TestFidelity:
    def test_matches_vectorized_discrete(self):
        loads = np.zeros(48, dtype=np.int64)
        loads[0] = 4800
        r_net = np.random.default_rng(9)
        r_vec = np.random.default_rng(9)
        hist = run_superstep_partners(loads, 20, r_net, discrete=True)
        x = loads.copy()
        for k in range(20):
            x = partner_round_discrete(x, r_vec)
            assert np.array_equal(hist[k + 1], x), f"diverged at round {k + 1}"

    def test_matches_vectorized_continuous(self):
        loads = np.zeros(32)
        loads[0] = 3200.0
        r_net = np.random.default_rng(4)
        r_vec = np.random.default_rng(4)
        hist = run_superstep_partners(loads, 15, r_net, discrete=False)
        x = loads.copy()
        for k in range(15):
            x = partner_round_continuous(x, r_vec)
            assert np.allclose(hist[k + 1], x, atol=1e-9), f"diverged at round {k + 1}"

    def test_conservation_through_protocol(self, rng):
        loads = rng.integers(0, 500, 40).astype(np.int64)
        hist = run_superstep_partners(loads, 10, rng, discrete=True)
        for state in hist:
            assert state.sum() == loads.sum()

    def test_same_injected_picks_same_result(self):
        loads = np.asarray([10.0, 2.0, 7.0, 1.0])
        picks = np.asarray([2, 3, 0, 1])
        a = SuperstepPartnerNetwork(loads)
        b = SuperstepPartnerNetwork(loads)
        a.round(picks)
        b.round(picks)
        assert np.array_equal(a.loads(), b.loads())
