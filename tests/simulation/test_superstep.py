"""Unit tests for the BSP message-passing substrate."""

import numpy as np
import pytest

from repro.core.diffusion import diffusion_round_continuous, diffusion_round_discrete
from repro.graphs import generators as g
from repro.simulation.superstep import (
    DiffusionNode,
    Message,
    SuperstepNetwork,
    run_superstep_diffusion,
)


class TestNodeLocalState:
    def test_degree_learning(self):
        t = g.star(4)
        net = SuperstepNetwork(t, np.zeros(4))
        hub = net.nodes[0]
        assert hub.neighbor_degrees == {1: 1, 2: 1, 3: 1}
        assert net.nodes[1].neighbor_degrees == {0: 3}

    def test_inbox_drains(self):
        node = DiffusionNode(node_id=0, load=1.0, neighbors=[1])
        node.deliver(Message(1, 0, "load", 5.0))
        assert len(node.drain_inbox()) == 1
        assert node.drain_inbox() == []


class TestFidelity:
    def test_discrete_matches_vectorized_exactly(self, any_topology, rng):
        loads = rng.integers(0, 5000, any_topology.n).astype(np.int64)
        hist = run_superstep_diffusion(any_topology, loads, 15, discrete=True)
        x = loads.copy()
        for k in range(15):
            x = diffusion_round_discrete(x, any_topology)
            assert np.array_equal(hist[k + 1], x), f"diverged at round {k + 1}"

    def test_continuous_matches_vectorized_closely(self, torus, rng):
        loads = rng.uniform(0, 100, torus.n)
        hist = run_superstep_diffusion(torus, loads, 15, discrete=False)
        x = loads.copy()
        for k in range(15):
            x = diffusion_round_continuous(x, torus)
            assert np.allclose(hist[k + 1], x, atol=1e-9)

    def test_point_load_spread(self):
        t = g.cycle(6)
        loads = np.zeros(6, dtype=np.int64)
        loads[0] = 6000
        hist = run_superstep_diffusion(t, loads, 1, discrete=True)
        # Node 0 sends floor(6000/8) = 750 to each neighbour.
        assert hist[1][0] == 6000 - 1500
        assert hist[1][1] == 750 and hist[1][5] == 750

    def test_conservation(self, torus, rng):
        loads = rng.integers(0, 1000, torus.n).astype(np.int64)
        hist = run_superstep_diffusion(torus, loads, 10, discrete=True)
        for state in hist:
            assert state.sum() == loads.sum()

    def test_history_length(self, cycle8):
        hist = run_superstep_diffusion(cycle8, np.zeros(8, dtype=np.int64), 7, discrete=True)
        assert len(hist) == 8


class TestValidation:
    def test_size_mismatch(self, torus):
        with pytest.raises(ValueError):
            SuperstepNetwork(torus, np.zeros(torus.n + 1))

    def test_discrete_needs_integer_loads(self, torus):
        with pytest.raises(ValueError, match="integer"):
            SuperstepNetwork(torus, np.zeros(torus.n), discrete=True)

    def test_loads_gather_dtype(self, torus):
        net = SuperstepNetwork(torus, np.ones(torus.n, dtype=np.int64), discrete=True)
        assert net.loads().dtype == np.int64
        netf = SuperstepNetwork(torus, np.ones(torus.n))
        assert netf.loads().dtype == np.float64
