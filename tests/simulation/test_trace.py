"""Unit tests for the Trace record."""

import math

import numpy as np
import pytest

from repro.simulation.trace import Trace


def geometric_trace(phi0=1024.0, rate=0.5, rounds=10):
    t = Trace(balancer_name="geo")
    for i in range(rounds + 1):
        half = math.sqrt(phi0 * rate**i / 2)
        t.record(np.asarray([half, -half]))
    return t


class TestRecording:
    def test_rounds_excludes_initial(self):
        t = geometric_trace(rounds=5)
        assert t.rounds == 5

    def test_empty_trace_guards(self):
        t = Trace()
        assert t.rounds == 0
        with pytest.raises(ValueError):
            _ = t.initial_potential
        with pytest.raises(ValueError):
            _ = t.last_potential
        with pytest.raises(ValueError):
            _ = t.last_discrepancy

    def test_snapshots_disabled_by_default(self):
        t = Trace()
        t.record(np.ones(3))
        with pytest.raises(ValueError):
            _ = t.snapshots

    def test_snapshots_are_copies(self):
        t = Trace(keep_snapshots=True)
        v = np.ones(3)
        t.record(v)
        v[0] = 99
        assert t.snapshots[0][0] == 1.0

    def test_load_sums_tracked(self):
        t = Trace()
        t.record(np.asarray([1.0, 2.0]))
        t.record(np.asarray([1.5, 1.5]))
        assert t.load_sums.tolist() == [3.0, 3.0]
        assert t.conservation_error() == 0.0

    def test_conservation_error_detects_leak(self):
        t = Trace()
        t.record(np.asarray([1.0, 2.0]))
        t.record(np.asarray([1.0, 1.0]))
        assert t.conservation_error() == pytest.approx(1.0)


class TestExtraction:
    def test_rounds_to_potential(self):
        t = geometric_trace(phi0=1024, rate=0.5, rounds=10)
        # Thresholds carry a hair of slack: the crafted loads reproduce the
        # target potentials only up to float64 rounding.
        assert t.rounds_to_potential(1024.01) == 0
        assert t.rounds_to_potential(512.01) == 1
        assert t.rounds_to_potential(100) == 4  # 1024/16 = 64 <= 100
        assert t.rounds_to_potential(0.5) is None

    def test_rounds_to_fraction(self):
        t = geometric_trace(phi0=1000, rate=0.5, rounds=10)
        assert t.rounds_to_fraction(0.25) == 2

    def test_rounds_to_discrepancy(self):
        t = Trace()
        t.record(np.asarray([0.0, 10.0]))
        t.record(np.asarray([4.0, 6.0]))
        assert t.rounds_to_discrepancy(3) == pytest.approx(1)
        assert t.rounds_to_discrepancy(1) is None

    def test_drop_factors_geometric(self):
        t = geometric_trace(rate=0.5, rounds=6)
        assert np.allclose(t.drop_factors(), 0.5)

    def test_mean_drop_factor(self):
        t = geometric_trace(rate=0.25, rounds=8)
        assert t.mean_drop_factor() == pytest.approx(0.25, rel=1e-6)

    def test_mean_drop_factor_empty(self):
        t = Trace()
        t.record(np.ones(2))
        assert math.isnan(t.mean_drop_factor())

    def test_drop_factors_zero_potential_tail(self):
        t = Trace()
        t.record(np.asarray([0.0, 2.0]))
        t.record(np.asarray([1.0, 1.0]))
        t.record(np.asarray([1.0, 1.0]))
        factors = t.drop_factors()
        assert factors[0] == pytest.approx(0.0)
        assert factors[1] == pytest.approx(1.0)  # 0/0 treated as no-change

    def test_summary_keys(self):
        t = geometric_trace()
        t.stopped_by = "max-rounds(10)"
        s = t.summary()
        assert s["balancer"] == "geo"
        assert s["rounds"] == 10
        assert s["stopped_by"] == "max-rounds(10)"
