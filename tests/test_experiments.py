"""Experiment-suite tests: each table regenerates and its claim columns hold.

These use reduced configurations (small graphs, few trials) so the whole
file runs in seconds; the benchmarks run the full defaults.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import small_suite
from repro.graphs import generators as g


class TestRegistry:
    def test_all_experiments_registered(self):
        # 13 paper experiments + extensions (E14, E15) + analysis (E16)
        # + systems view (E17).
        assert sorted(EXPERIMENTS) == [f"e{i:02d}" for i in range(1, 18)]


class TestE01Theorem4:
    def test_bound_holds_on_small_suite(self):
        table = EXPERIMENTS["e01"](eps=1e-4, topologies=small_suite())
        assert all(v is True for v in table.column("within_bound"))

    def test_measured_rate_below_guaranteed(self):
        table = EXPERIMENTS["e01"](eps=1e-4, topologies=small_suite())
        for meas, guar in zip(table.column("rate_meas"), table.column("rate_bound")):
            assert meas <= guar + 1e-9


class TestE02Theorem6:
    def test_bound_and_lemma5_hold(self):
        table = EXPERIMENTS["e02"](ratio=100, topologies=small_suite())
        assert all(v is True for v in table.column("lemma5_holds"))
        for meas, bound in zip(table.column("T_meas"), table.column("T_bound")):
            assert meas is not None and meas <= bound


class TestE03Sequentialization:
    def test_no_lemma1_violations_and_gap(self):
        table = EXPERIMENTS["e03"](trials=5, topologies=small_suite())
        assert all(v == 0 for v in table.column("lemma1_viol"))
        assert all(v is True for v in table.column("gap>=0.5"))
        assert all(v >= 1.0 for v in table.column("drop/lemma2_lb_min"))

    def test_discrete_variant(self):
        table = EXPERIMENTS["e03"](trials=3, topologies=[g.torus_2d(4, 4)], discrete=True)
        assert table.column("lemma1_viol") == [0]


class TestE04E05Dynamic:
    def scenarios(self):
        from repro.graphs.dynamic import EdgeSamplingDynamics

        base = g.torus_2d(4, 4)
        return [("t44 p=0.8", EdgeSamplingDynamics(base, 0.8, seed=1))]

    def test_e04_within_bound(self):
        table = EXPERIMENTS["e04"](eps=1e-3, scenarios=self.scenarios())
        assert all(v is True for v in table.column("within_bound"))

    def test_e05_within_bound(self):
        table = EXPERIMENTS["e05"](ratio=100, scenarios=self.scenarios())
        assert all(v is True for v in table.column("within_bound"))


class TestE06Lemma9:
    def test_probability_above_half(self):
        table = EXPERIMENTS["e06"](sizes=(64, 256), rounds=30)
        assert all(v is True for v in table.column("holds"))
        assert all(p > 0.5 for p in table.column("Pr[max(d)<=5 | link]"))


class TestE07Lemma10:
    def test_identity_noise_level(self):
        table = EXPERIMENTS["e07"](sizes=(8, 64), trials=5)
        assert all(v is True for v in table.column("identity_holds"))


class TestE08RandomContinuous:
    def test_lemma11_and_theorem12(self):
        table = EXPERIMENTS["e08"](sizes=(64,), trials=5)
        assert all(v is True for v in table.column("lemma11_holds"))
        for frac, guar in zip(table.column("success_frac"), table.column("guar_prob")):
            assert frac >= guar - 1e-9


class TestE09RandomDiscrete:
    def test_lemma13_and_theorem14(self):
        table = EXPERIMENTS["e09"](sizes=(64,), ratio=100, trials=5)
        assert all(v is True for v in table.column("lemma13_holds"))
        for frac, guar in zip(table.column("success_frac"), table.column("guar_prob")):
            assert frac >= guar - 1e-9


class TestE10DimensionExchange:
    def test_diffusion_beats_gm94(self):
        table = EXPERIMENTS["e10"](eps=1e-3, topologies=small_suite())
        assert all(v is True for v in table.column("diffusion_wins"))
        assert all(s is None or s > 1 for s in table.column("speedup_gm94"))


class TestE11ThresholdScaling:
    def test_stall_below_linear_threshold(self):
        table = EXPERIMENTS["e11"](sizes=(32, 64), max_rounds=5_000)
        assert all(v is True for v in table.column("below_linear"))

    def test_quadratic_ratio_decays(self):
        table = EXPERIMENTS["e11"](sizes=(32, 64, 128), max_rounds=5_000)
        ratios = table.column("stall/quadratic")
        assert ratios[-1] < ratios[0]


class TestE12Baselines:
    def test_ordering_ops_sos_fos(self):
        table = EXPERIMENTS["e12"](eps=1e-5, topologies=[g.cycle(16), g.hypercube(4)])
        assert all(v is True for v in table.column("ordering_holds"))

    def test_ops_meets_prediction(self):
        table = EXPERIMENTS["e12"](eps=1e-5, topologies=[g.hypercube(4)])
        t_ops = table.column("T_ops")[0]
        pred = table.column("ops_pred(m-1)")[0]
        assert t_ops <= pred


class TestE14Heterogeneous:
    def test_converges_and_matches_alg1(self):
        table = EXPERIMENTS["e14"](topologies=[g.torus_2d(4, 4)], eps=1e-4)
        assert all(v is True for v in table.column("converged"))
        matches = [v for v in table.column("matches_alg1") if v is not None]
        assert all(v is True for v in matches)


class TestE15AsyncVsSync:
    def test_constant_factor(self):
        table = EXPERIMENTS["e15"](eps=1e-4, topologies=[g.torus_2d(4, 4), g.hypercube(4)])
        assert all(v is True for v in table.column("constant_factor"))


class TestE17TokenMigration:
    def test_policy_independence_of_totals(self):
        table = EXPERIMENTS["e17"](topologies=[g.torus_2d(4, 4)], tokens_per_node=100)
        totals = table.column("total_migrations")
        assert len(set(totals)) == 1
        maxes = dict(zip(table.column("policy"), table.column("max_per_token")))
        assert maxes["lifo"] >= maxes["fifo"]


class TestE16BoundTightness:
    def test_slack_is_lemma1_factor_two(self):
        table = EXPERIMENTS["e16"](eps=1e-6, topologies=[g.torus_2d(4, 4), g.hypercube(4)])
        assert all(v is True for v in table.column("slack~2"))
        assert all(v is True for v in table.column("respects_diam"))


class TestE13LocalDivergence:
    def test_deviation_below_psi(self):
        table = EXPERIMENTS["e13"](topologies=[g.torus_2d(4, 4), g.hypercube(4)])
        assert all(v is True for v in table.column("dev<=Psi"))

    def test_psi_ratio_bounded(self):
        table = EXPERIMENTS["e13"](topologies=[g.cycle(16), g.hypercube(4), g.complete(8)])
        assert all(r < 50 for r in table.column("Psi/bound"))
