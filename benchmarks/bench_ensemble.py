"""Batched + sharded ensemble throughput vs sequential Simulator runs.

The tentpole claim of the batched execution stack is that running ``B``
Monte-Carlo replicas in lockstep through :class:`EnsembleSimulator` beats
``B`` sequential :class:`Simulator.run` calls by amortizing the per-round
engine overhead and turning the round kernel into a handful of large
vectorized operations.  This bench measures both sides in *replica-rounds
per second* (one replica advancing one round = 1 unit) on tori of n in
{256, 4096} with B in {1, 64}, continuous and discrete, for Algorithm 1
(``diffusion``) and random-matching dimension exchange (``matching-de``).

Two further sections:

- *backend rows*: the headline (n=4096, B=64) diffusion rows re-measured
  on **every available kernel backend** (numpy reference / scipy /
  numba), so the regression guard covers each backend the host can run
  and the fused-numba acceptance has a same-host scipy yardstick.
- *sharded*: ``run_sharded_ensemble`` — the replica batch split into K
  process-local ensemble shards — against the single-process vectorized
  path on the 4096-node torus at B=256.  The >=2x sharded acceptance
  applies to hosts with >=4 usable cores; core count is detected **at
  check time**, so a >=4-core runner enforces the gate (CI does, via a
  full-size gate row even under ``--smoke --check``) while a smaller
  host records the measured ratio with ``passed: null``.
- *partitioned*: the node-axis analogue — one giant graph split into
  P=4 halo-exchanging blocks (``PartitionedSimulator``, in-process and
  persistent-worker-process modes) against the single-block serial run,
  with halo-traffic counters per row.  Trajectories are bit-for-bit
  identical, so the rows measure pure execution speedup.  The >=1.0x
  process-mode acceptance (n=65536, discrete) is enforced at check time
  on >=4-core hosts via a full-size gate row, mirroring the sharded
  gate; smaller hosts record ``passed: null``.  ``--partitioned-out``
  writes the section as a standalone JSON artifact.
- *transport*: the frame layer itself — slab round-trip MB/s per
  channel (mp-pipe / tcp / loopback, plus mpi when importable),
  zero-copy protocol-5 frames against the old in-band pickle-blob
  framing.  The >=1.3x zero-copy acceptance on >=1 MiB slabs over tcp
  or mp-pipe is enforced at ``--check`` time on full-size slabs.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_ensemble.py --out BENCH_ensemble.json
    PYTHONPATH=src python benchmarks/bench_ensemble.py --smoke   # CI, ~seconds

CI runs the smoke grid with ``--check BENCH_ensemble.json``: each
(n, B, mode, scheme, backend) row's measured *speedup* (batched over
serial — machine-normalized throughput) must stay within 30% of the
committed baseline's, turning the smoke run into a regression guard.
Rows whose (backend) key is absent from the baseline — e.g. numba rows
on a baseline recorded on a scipy-only host — are skipped, so
scipy-only hosts regress on no row while numba hosts still gate the
common rows.  ``--backend`` pins the main grid's kernel backend (the
numba CI leg runs ``--backend numba``).

Under pytest (smoke-sized) the headline speedups are asserted directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.baselines.dimension_exchange import DimensionExchangeBalancer
from repro.core.backends import BACKEND_CHOICES, available_backends, resolve_backend
from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.partitioned import PartitionedSimulator
from repro.simulation.sharding import run_sharded_ensemble
from repro.simulation.stopping import MaxRounds

SEED = 1234
SHARD_WORKERS = 4
#: node-axis gate: blocks for the partitioned acceptance row
PARTITION_BLOCKS = 4
#: node-axis gate: torus side (n = side^2 = 65536) for the full-size row
PARTITION_GATE_SIDE = 256
#: full-run floor for fused-numba discrete vs same-host scipy; the smoke
#: floor only guards against the fused path being a pessimization (shared
#: CI runners are too noisy to gate the full ratio at smoke sizes).
NUMBA_DISCRETE_GATE = 1.5
NUMBA_DISCRETE_SMOKE_FLOOR = 0.8
#: transport gate: zero-copy frames must move >=1 MiB slabs at least
#: this much faster than the in-band (pickle-blob) framing on tcp or
#: mp-pipe, measured at check time on full-size slabs.
TRANSPORT_GATE_MIN_SPEEDUP = 1.3
TRANSPORT_GATE_SLAB_MIB = 4


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_balancer(topo, mode: str, scheme: str, backend: str | None = None):
    if scheme == "diffusion":
        return DiffusionBalancer(topo, mode=mode, backend=backend)
    if scheme == "matching-de":
        bal = DimensionExchangeBalancer(topo, mode=mode, partner_rule="luby")
        bal.backend = backend
        return bal
    raise ValueError(f"unknown scheme {scheme!r}")


def _initial_loads(n: int, discrete: bool) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    if discrete:
        return rng.integers(0, 10_000, n).astype(np.int64)
    return rng.uniform(0.0, 10_000.0, n)


def _time_serial(topo, mode, scheme, loads, replicas: int, rounds: int, backend=None) -> float:
    """Seconds for ``replicas`` sequential Simulator.run calls of ``rounds`` rounds."""
    bal = _make_balancer(topo, mode, scheme, backend)
    rngs = spawn_rngs(SEED, replicas)
    start = time.perf_counter()
    for b in range(replicas):
        Simulator(bal, stopping=[MaxRounds(rounds)]).run(loads, rngs[b])
    return time.perf_counter() - start


def _time_batched(topo, mode, scheme, loads, replicas: int, rounds: int, backend=None) -> float:
    """Seconds for one EnsembleSimulator run of ``replicas`` lockstep replicas."""
    bal = _make_balancer(topo, mode, scheme, backend)
    # serial_singleton=False so the B=1 row keeps measuring the batched
    # kernels themselves (the engine's default would dispatch it serially
    # and the row would tautologically read 1.0).
    ens = EnsembleSimulator(bal, stopping=[MaxRounds(rounds)], serial_singleton=False)
    start = time.perf_counter()
    ens.run(loads, seed=SEED, replicas=replicas)
    return time.perf_counter() - start


def _time_sharded(topo, mode, scheme, loads, replicas: int, rounds: int, workers: int) -> float:
    """Seconds for one sharded run: ``workers`` process-local ensemble blocks."""
    bal = _make_balancer(topo, mode, scheme)
    start = time.perf_counter()
    run_sharded_ensemble(
        bal, loads, seed=SEED, replicas=replicas, workers=workers,
        stopping=[MaxRounds(rounds)],
    )
    return time.perf_counter() - start


def measure(side, replicas, mode, rounds, repeats: int = 5, scheme: str = "diffusion",
            backend: str | None = None) -> dict:
    """One (n, B, mode, scheme, backend) serial-vs-batched comparison row.

    Each side is timed ``repeats`` times and the best time is kept — the
    standard way to strip scheduler noise from a shared machine; both
    sides get the same treatment (including any JIT warm-up, absorbed by
    the warm-up calls below).
    """
    backend = resolve_backend(backend)
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    # Warm the per-topology operator caches (and JIT compilation for the
    # numba backend) so construction cost is not attributed to either side.
    _time_serial(topo, mode, scheme, loads, 1, 2, backend)
    _time_batched(topo, mode, scheme, loads, min(replicas, 2), 2, backend)
    serial_s = min(
        _time_serial(topo, mode, scheme, loads, replicas, rounds, backend)
        for _ in range(repeats)
    )
    batched_s = min(
        _time_batched(topo, mode, scheme, loads, replicas, rounds, backend)
        for _ in range(repeats)
    )
    unit = replicas * rounds  # replica-rounds executed by each side
    return {
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "scheme": scheme,
        "backend": backend,
        "rounds": rounds,
        "serial_seconds": round(serial_s, 6),
        "batched_seconds": round(batched_s, 6),
        "serial_replica_rounds_per_sec": round(unit / serial_s, 1),
        "batched_replica_rounds_per_sec": round(unit / batched_s, 1),
        "speedup": round(serial_s / batched_s, 3),
    }


def measure_sharded(side, replicas, mode, rounds, workers, repeats: int = 3,
                    scheme: str = "diffusion") -> dict:
    """One vectorized-vs-sharded comparison row (same total replica batch)."""
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    _time_batched(topo, mode, scheme, loads, min(replicas, 2), 2)
    _time_sharded(topo, mode, scheme, loads, min(replicas, 2 * workers), 2, workers)
    vec_s = min(_time_batched(topo, mode, scheme, loads, replicas, rounds) for _ in range(repeats))
    sha_s = min(
        _time_sharded(topo, mode, scheme, loads, replicas, rounds, workers)
        for _ in range(repeats)
    )
    unit = replicas * rounds
    return {
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "scheme": scheme,
        "rounds": rounds,
        "workers": workers,
        "vectorized_seconds": round(vec_s, 6),
        "sharded_seconds": round(sha_s, 6),
        "vectorized_replica_rounds_per_sec": round(unit / vec_s, 1),
        "sharded_replica_rounds_per_sec": round(unit / sha_s, 1),
        "sharded_speedup": round(vec_s / sha_s, 3),
    }


def _time_partitioned(topo, mode, loads, rounds: int, partitions: int, strategy: str,
                      pmode: str, backend=None, transport: str = "mp-pipe",
                      overlap: bool = False, delta: bool = False) -> tuple[float, dict]:
    """Seconds for one PartitionedSimulator run; returns (time, halo stats)."""
    bal = DiffusionBalancer(topo, mode=mode, backend=backend)
    psim = PartitionedSimulator(
        bal, partitions=partitions, strategy=strategy, mode=pmode,
        stopping=[MaxRounds(rounds)], transport=transport,
        overlap=overlap, delta_frames=delta,
    )
    start = time.perf_counter()
    psim.run(loads)
    return time.perf_counter() - start, dict(psim.halo_stats)


def _near_balanced_loads(n: int) -> np.ndarray:
    """Discrete loads a few rounds from convergence: a flat profile with a
    small perturbation on the first nodes.  Most rounds move nothing on
    most links, so delta frames collapse to row-index headers — the
    regime the delta byte-reduction gate measures."""
    loads = np.full(n, 100, dtype=np.int64)
    loads[: min(4, n)] += np.array([40, 30, 20, 10])[: min(4, n)]
    return loads


def measure_partitioned(side, mode, rounds, partitions=PARTITION_BLOCKS, strategy="bfs",
                        pmode="process", repeats: int = 3, backend: str | None = None,
                        transport: str = "mp-pipe", overlap: bool = False,
                        delta: bool = False, near_balanced: bool = False) -> dict:
    """One single-block-vs-partitioned comparison row (B = 1, one graph).

    The single-block side is the serial :class:`Simulator` on the whole
    topology — the run a partitioned deployment replaces.  The
    partitioned side splits the node axis into ``partitions``
    halo-exchanging blocks (in-process vectorized loop, or persistent
    worker processes for ``pmode="process"``); trajectories are
    bit-for-bit identical, so the row measures pure execution overhead /
    speedup plus the halo traffic actually exchanged.
    """
    backend = resolve_backend(backend)
    topo = torus_2d(side, side)
    discrete = mode == "discrete"
    if near_balanced:
        loads = _near_balanced_loads(topo.n)
        loads = loads if discrete else loads.astype(np.float64)
    else:
        loads = _initial_loads(topo.n, discrete=discrete)
    # Warm the operator + partition caches on both sides (and the worker
    # startup path for process mode) so construction is not attributed.
    _time_serial(topo, mode, "diffusion", loads, 1, 2, backend)
    _time_partitioned(topo, mode, loads, 2, partitions, strategy, pmode, backend,
                      transport, overlap, delta)
    single_s = min(
        _time_serial(topo, mode, "diffusion", loads, 1, rounds, backend)
        for _ in range(repeats)
    )
    part_s = float("inf")
    halo: dict = {}
    for _ in range(repeats):
        t, h = _time_partitioned(
            topo, mode, loads, rounds, partitions, strategy, pmode, backend,
            transport, overlap, delta
        )
        if t < part_s:
            part_s, halo = t, h
    return {
        "n": topo.n,
        "backend": backend,
        "mode": mode,
        "rounds": rounds,
        "partitions": partitions,
        "strategy": strategy,
        "partition_mode": pmode,
        "transport": halo.get("transport"),
        "overlap": overlap,
        "delta_frames": delta,
        "loads": "near-balanced" if near_balanced else "default",
        "single_seconds": round(single_s, 6),
        "partitioned_seconds": round(part_s, 6),
        "single_rounds_per_sec": round(rounds / single_s, 1),
        "partitioned_rounds_per_sec": round(rounds / part_s, 1),
        "partitioned_speedup": round(single_s / part_s, 3),
        "halo_values_exchanged": halo.get("halo_values", 0),
        "halo_values_per_round": round(halo.get("halo_values", 0) / max(rounds, 1), 1),
        "halo_bytes_per_round": round(halo.get("halo_bytes", 0) / max(rounds, 1), 1),
        "link_bytes_per_round": {
            link: round(nbytes / max(rounds, 1), 1)
            for link, nbytes in sorted(halo.get("links", {}).items())
        },
    }


# ----------------------------------------------------------------------
# Transport microbench: zero-copy frames vs the in-band pickle blob
# ----------------------------------------------------------------------
def _time_transport_round_trips(pair, make_payload, unwrap, count: int) -> float:
    """Seconds for ``count`` serialized payload round-trips over ``pair``.

    The echo side re-*sends* what it receives, so both directions pay the
    frame encode (where the zero-copy vs in-band difference lives).
    """
    a, b = pair

    def echo() -> None:
        for _ in range(count):
            b.send(b.recv(timeout=120.0))

    t = threading.Thread(target=echo, daemon=True)
    t.start()
    start = time.perf_counter()
    for _ in range(count):
        a.send(make_payload())
        unwrap(a.recv(timeout=120.0))
    elapsed = time.perf_counter() - start
    t.join(timeout=120)
    return elapsed


def measure_transport(transport: str, slab_mib: float, count: int,
                      repeats: int = 3) -> dict:
    """One channel's slab round-trip MB/s: zero-copy vs in-band framing.

    *Zero-copy* sends the numpy slab itself — protocol-5 ships it as an
    out-of-band buffer (views straight to the wire, ``recv`` lands chunks
    in a preallocated writable segment).  *In-band* emulates the old
    frame layer: the slab is pre-pickled into one ``bytes`` blob per
    send, which rides inside the metadata pickle (copied at least twice
    per hop), and the receiver unpickles it.  Same channel, same logical
    payload, so the ratio isolates the framing win.
    """
    from repro.distributed.transport import make_pair

    slab = np.random.default_rng(SEED).standard_normal(
        int(slab_mib * (1 << 20) // 8)
    )
    mb_moved = 2 * count * slab.nbytes / 1e6  # both directions
    zero_s = inband_s = float("inf")
    for _ in range(repeats):
        pair = make_pair(transport)
        zero_s = min(zero_s, _time_transport_round_trips(
            pair, lambda: slab, lambda obj: obj, count
        ))
        for ch in pair:
            ch.close()
        pair = make_pair(transport)
        inband_s = min(inband_s, _time_transport_round_trips(
            pair,
            lambda: pickle.dumps(slab, protocol=5),
            pickle.loads,
            count,
        ))
        for ch in pair:
            ch.close()
    return {
        "transport": transport,
        "slab_mib": slab_mib,
        "round_trips": count,
        "zero_copy_mb_per_sec": round(mb_moved / zero_s, 1),
        "in_band_mb_per_sec": round(mb_moved / inband_s, 1),
        "zero_copy_speedup": round(inband_s / zero_s, 3),
    }


def measure_transport_section(smoke: bool) -> dict:
    """Per-channel slab round-trip rows (every available transport).

    The mpi row appears whenever ``mpi4py`` is importable (a self-pair on
    ``COMM_SELF`` — same frame path a cluster run exercises).
    """
    from repro.distributed.transport import available_transports

    slab_mib = 1 if smoke else TRANSPORT_GATE_SLAB_MIB
    count = 5 if smoke else 20
    rows = [measure_transport(t, slab_mib, count) for t in available_transports()]
    for row in rows:
        print(
            f"{'transport':12s} {row['transport']:9s} slab={row['slab_mib']:.0f}MiB: "
            f"zero-copy {row['zero_copy_mb_per_sec']:>8.1f} MB/s  "
            f"in-band {row['in_band_mb_per_sec']:>8.1f} MB/s  "
            f"speedup {row['zero_copy_speedup']:.2f}x"
        )
    return {"slab_mib": slab_mib, "round_trips": count, "rows": rows}


def transport_gate_failures(rows: list[dict]) -> list[str]:
    """The >=1.3x zero-copy acceptance on full-size slabs (tcp/mp-pipe).

    Loopback is excluded (its zero-copy side moves references, so the
    ratio is huge but says nothing about wires); the gate passes when
    *either* real wire clears the bar, since socket-vs-pipe relative
    cost is host-dependent.
    """
    eligible = [r for r in rows if r["transport"] in ("tcp", "mp-pipe")]
    if not eligible:  # pragma: no cover - defensive
        return ["transport gate: no tcp/mp-pipe rows measured"]
    best = max(r["zero_copy_speedup"] for r in eligible)
    if best < TRANSPORT_GATE_MIN_SPEEDUP:
        return [
            f"transport gate: best zero-copy speedup {best:.3f}x over tcp/mp-pipe "
            f"< required {TRANSPORT_GATE_MIN_SPEEDUP}x on "
            f">= {TRANSPORT_GATE_SLAB_MIB} MiB slabs"
        ]
    return []


# ----------------------------------------------------------------------
# Distributed section: the dispatcher over real `repro-lb worker` processes
# ----------------------------------------------------------------------
def _spawn_local_workers(count: int) -> tuple[list, list[str]]:
    """Launch ``count`` ``repro-lb worker`` subprocesses on loopback."""
    from repro.distributed.worker import launch_worker_process

    procs, addrs = [], []
    try:
        for _ in range(count):
            proc, addr = launch_worker_process()
            procs.append(proc)
            addrs.append(addr)
    except RuntimeError:
        for proc in procs:
            proc.terminate()
        raise
    return procs, addrs


def measure_dispatch_partitioned(side, mode, rounds, worker_addrs, partitions=4,
                                 repeats: int = 2) -> dict:
    """One serial-vs-dispatched comparison row over real TCP workers.

    The same single-block serial baseline as the partitioned section;
    the distributed side round-robins ``partitions`` blocks over the
    workers and pays real rendezvous + TCP halo traffic, reported as
    per-link bytes/round next to the halo value counters.
    """
    from repro.distributed.dispatcher import dispatch_partitioned

    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    _time_serial(topo, mode, "diffusion", loads, 1, 2)
    single_s = min(_time_serial(topo, mode, "diffusion", loads, 1, rounds) for _ in range(repeats))
    disp_s = float("inf")
    stats: dict = {}
    for _ in range(repeats):
        bal = DiffusionBalancer(topo, mode=mode)
        start = time.perf_counter()
        _, s = dispatch_partitioned(
            bal, loads, worker_addrs, partitions=partitions, strategy="bfs",
            stopping=[MaxRounds(rounds)],
        )
        elapsed = time.perf_counter() - start
        if elapsed < disp_s:
            disp_s, stats = elapsed, s
    return {
        "kind": "partitioned-dispatch",
        "n": topo.n,
        "mode": mode,
        "rounds": rounds,
        "partitions": partitions,
        "workers": len(worker_addrs),
        "transport": "tcp",
        "single_seconds": round(single_s, 6),
        "dispatched_seconds": round(disp_s, 6),
        "dispatched_speedup": round(single_s / disp_s, 3),
        "halo_values_per_round": round(stats.get("halo_values", 0) / max(rounds, 1), 1),
        "halo_bytes_per_round": round(stats.get("halo_bytes", 0) / max(rounds, 1), 1),
        "link_bytes_per_round": {
            link: round(nbytes / max(rounds, 1), 1)
            for link, nbytes in sorted(stats.get("links", {}).items())
        },
        "blocks_by_worker": stats.get("blocks_by_worker", {}),
    }


def measure_dispatch_sharded(side, replicas, mode, rounds, worker_addrs,
                             repeats: int = 2) -> dict:
    """One vectorized-vs-dispatched shard comparison row over TCP workers."""
    from repro.distributed.dispatcher import dispatch_sharded

    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    _time_batched(topo, mode, "diffusion", loads, min(replicas, 2), 2)
    vec_s = min(
        _time_batched(topo, mode, "diffusion", loads, replicas, rounds) for _ in range(repeats)
    )
    disp_s = float("inf")
    stats: dict = {}
    for _ in range(repeats):
        bal = DiffusionBalancer(topo, mode=mode)
        start = time.perf_counter()
        _, s = dispatch_sharded(
            bal, loads, worker_addrs, shards=len(worker_addrs), seed=SEED,
            replicas=replicas, stopping=[MaxRounds(rounds)],
        )
        elapsed = time.perf_counter() - start
        if elapsed < disp_s:
            disp_s, stats = elapsed, s
    control_bytes = sum(
        t["bytes_sent"] + t["bytes_received"]
        for t in stats.get("control_traffic", {}).values()
    )
    return {
        "kind": "sharded-dispatch",
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "rounds": rounds,
        "shards": stats.get("shards"),
        "workers": len(worker_addrs),
        "transport": "tcp",
        "vectorized_seconds": round(vec_s, 6),
        "dispatched_seconds": round(disp_s, 6),
        "dispatched_speedup": round(vec_s / disp_s, 3),
        "control_bytes_total": control_bytes,
        "shards_by_worker": stats.get("shards_by_worker", {}),
    }


def measure_dispatch_hardened(side, replicas, mode, rounds, plain_row,
                              repeats: int = 2) -> dict:
    """Heartbeat + HMAC-auth overhead on the sharded dispatch row.

    Spawns its own pair of *keyed* workers (the hardened handshake needs
    both sides keyed), reruns the exact workload of ``plain_row`` with a
    heartbeat stream and authenticated rendezvous, and reports the
    overhead against that row's plain dispatched time.  Recorded, not
    gated — the expectation is "within noise": auth costs two HMAC
    round-trips at rendezvous and beats ride send_nowait.
    """
    from repro.distributed.dispatcher import dispatch_sharded
    from repro.distributed.worker import launch_worker_process

    authkey = "bench-hardened"
    heartbeat = 0.5
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    procs, addrs = [], []
    try:
        for _ in range(2):
            proc, addr = launch_worker_process(extra_args=("--authkey", authkey))
            procs.append(proc)
            addrs.append(addr)
        disp_s = float("inf")
        stats: dict = {}
        for _ in range(repeats):
            bal = DiffusionBalancer(topo, mode=mode)
            start = time.perf_counter()
            _, s = dispatch_sharded(
                bal, loads, addrs, shards=len(addrs), seed=SEED,
                replicas=replicas, stopping=[MaxRounds(rounds)],
                authkey=authkey, heartbeat=heartbeat,
            )
            elapsed = time.perf_counter() - start
            if elapsed < disp_s:
                disp_s, stats = elapsed, s
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:  # pragma: no cover - defensive
                proc.kill()
    plain_s = plain_row["dispatched_seconds"]
    return {
        "kind": "sharded-dispatch-hardened",
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "rounds": rounds,
        "workers": len(addrs),
        "transport": "tcp",
        "auth": stats.get("auth", False),
        "heartbeat": heartbeat,
        "plain_seconds": plain_s,
        "hardened_seconds": round(disp_s, 6),
        "hardened_overhead_pct": round(100.0 * (disp_s - plain_s) / plain_s, 1),
    }


def measure_recovery_row(smoke: bool) -> dict:
    """Kill-one-worker re-dispatch: recovery time on a 3-worker sweep.

    Runs the same sharded ensemble twice over 3 self-spawned workers:
    once clean, once SIGKILLing one worker mid-sweep so its in-flight
    shards re-queue onto the survivors.  Reports the wall-clock cost of
    the recovery (detect EOF, probe the dead address, re-deal) on top of
    the clean run.  Both traces are bit-for-bit identical by the
    re-queue determinism contract; the row records only timing.
    """
    import threading

    from repro.distributed.dispatcher import dispatch_sharded
    from repro.distributed.worker import launch_worker_process

    side = 32
    replicas, shards = 6, 6
    # Sized so each single-replica shard runs >~1 s (per-round engine
    # overhead dominates at this n) — the kill must land while the
    # victim still has shards in flight.
    rounds = 5_000 if smoke else 10_000
    kill_at = 0.4 if smoke else 0.8
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=False)

    def _run(kill: bool):
        procs, addrs = [], []
        try:
            for _ in range(3):
                proc, addr = launch_worker_process()
                procs.append(proc)
                addrs.append(addr)
            killer = threading.Timer(kill_at, procs[0].kill) if kill else None
            if killer is not None:
                killer.start()
            start = time.perf_counter()
            try:
                _, stats = dispatch_sharded(
                    DiffusionBalancer(topo), loads, addrs, shards=shards,
                    seed=SEED, replicas=replicas, stopping=[MaxRounds(rounds)],
                    timeout=120.0,
                )
            finally:
                if killer is not None:
                    killer.cancel()
            return time.perf_counter() - start, stats
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except Exception:  # pragma: no cover - defensive
                    proc.kill()

    clean_s, _ = _run(kill=False)
    killed_s, stats = _run(kill=True)
    return {
        "kind": "sharded-dispatch-recovery",
        "n": topo.n,
        "replicas": replicas,
        "shards": shards,
        "mode": "continuous",
        "rounds": rounds,
        "workers": 3,
        "transport": "tcp",
        "killed_after_seconds": kill_at,
        "clean_seconds": round(clean_s, 6),
        "recovered_seconds": round(killed_s, 6),
        "recovery_overhead_seconds": round(killed_s - clean_s, 6),
        "requeued_shards": stats.get("requeued_shards", 0),
        "retries": stats.get("retries", 0),
    }


def measure_distributed_section(smoke: bool, worker_addrs: list[str] | None = None) -> dict:
    """The dispatcher rows, against given workers or 2 self-spawned ones.

    Recorded, not gated: on a single host the rows measure the
    rendezvous + TCP overhead a real deployment amortizes over larger
    subproblems (loopback cannot exhibit multi-host parallelism).  The
    per-link bytes/round counters are the payload a cluster operator
    capacity-plans with.
    """
    side = 32 if smoke else 64
    rounds = 20 if smoke else 100
    replicas = 16 if smoke else 64
    procs: list = []
    spawned = worker_addrs is None or not worker_addrs
    if spawned:
        procs, worker_addrs = _spawn_local_workers(2)
    try:
        rows = [
            measure_dispatch_partitioned(side, "discrete", rounds, worker_addrs),
            measure_dispatch_sharded(side, replicas, "continuous", rounds, worker_addrs),
        ]
        rows.append(
            measure_dispatch_hardened(side, replicas, "continuous", rounds, rows[-1])
        )
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:  # pragma: no cover - defensive
                proc.kill()
    rows.append(measure_recovery_row(smoke))
    for row in rows:
        if row["kind"] == "partitioned-dispatch":
            print(
                f"{'dispatch':12s} n={row['n']:5d} P={row['partitions']} "
                f"{row['mode']:10s} [{row['workers']} workers, tcp]: "
                f"speedup {row['dispatched_speedup']:.2f}x  "
                f"halo {row['halo_values_per_round']:.0f} values "
                f"/ {row['halo_bytes_per_round']:.0f} B per round"
            )
        elif row["kind"] == "sharded-dispatch-hardened":
            print(
                f"{'dispatch':12s} n={row['n']:5d} B={row['replicas']:3d} "
                f"{row['mode']:10s} [auth+hb, {row['workers']} workers, tcp]: "
                f"hardened {row['hardened_seconds']:.3f}s vs plain "
                f"{row['plain_seconds']:.3f}s "
                f"({row['hardened_overhead_pct']:+.1f}%)"
            )
        elif row["kind"] == "sharded-dispatch-recovery":
            print(
                f"{'dispatch':12s} n={row['n']:5d} B={row['replicas']:3d} "
                f"{row['mode']:10s} [kill 1/{row['workers']} workers, tcp]: "
                f"recovered {row['recovered_seconds']:.3f}s vs clean "
                f"{row['clean_seconds']:.3f}s  "
                f"requeued {row['requeued_shards']} shard(s) "
                f"over {row['retries']} retry(ies)"
            )
        else:
            print(
                f"{'dispatch':12s} n={row['n']:5d} B={row['replicas']:3d} "
                f"{row['mode']:10s} [{row['shards']} shards, {row['workers']} workers, tcp]: "
                f"speedup {row['dispatched_speedup']:.2f}x  "
                f"control {row['control_bytes_total']} B"
            )
    return {
        "workers": list(worker_addrs),
        "spawned_local_workers": spawned,
        "rows": rows,
    }


def _median_ratio(num: list[float], den: list[float]) -> float:
    """Median of per-repeat paired ratios — one poisoned timing window
    shifts one ratio, not the estimate (the overhead gates sit at 2%,
    far below the burst noise a shared host can inject)."""
    ratios = sorted(a / b for a, b in zip(num, den))
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2.0


def measure_telemetry_overhead(side, mode, rounds, repeats: int = 5,
                               backend: str | None = None) -> dict:
    """Instrumented-vs-plain serial round loop, plus the tracing-on cost.

    Three timings of the same ``(balancer, loads, seed)`` workload:

    - ``plain``: a verbatim copy of the pre-telemetry round loop (step /
      record / stopping check, no recorder interaction at all);
    - ``tracing off``: the instrumented :class:`Simulator` loop with the
      recorder disabled — the production default, whose only extra work
      is a hoisted local-bool branch per round;
    - ``tracing on``: the same loop with an in-memory tracing recorder
      installed (per-round spans + per-kernel timings).

    ``tracing_off_overhead`` is the fractional cost of carrying the
    disabled instrumentation; the telemetry acceptance requires <= 2%
    at full size.  Best-of-``repeats`` timings shed scheduler noise.
    """
    from repro.observability.recorder import Recorder, set_recorder
    from repro.simulation.stopping import first_satisfied
    from repro.simulation.trace import Trace

    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, mode == "discrete")

    def run_plain() -> float:
        # Verbatim pre-telemetry Simulator.run (same attribute-access
        # patterns — a locals-hoisted copy would flatter the plain side).
        sim = Simulator(_make_balancer(topo, mode, "diffusion", backend),
                        stopping=[MaxRounds(rounds)], check_conservation=False)
        start = time.perf_counter()
        rng = np.random.default_rng(SEED)
        sim.balancer.reset()
        current = sim.balancer.validate_loads(loads.copy())
        trace = Trace(balancer_name=sim.balancer.name,
                      keep_snapshots=sim.keep_snapshots)
        trace.record(current)
        initial_sum = float(np.asarray(current, dtype=np.float64).sum())
        rule = first_satisfied(sim.stopping, trace)
        while rule is None:
            current = sim.balancer.step(current, rng)
            trace.record(current)
            if sim.check_conservation:
                sim._audit_conservation(current, initial_sum)
            rule = first_satisfied(sim.stopping, trace)
        trace.stopped_by = rule.reason
        return time.perf_counter() - start

    def run_instrumented() -> float:
        bal = _make_balancer(topo, mode, "diffusion", backend)
        sim = Simulator(bal, stopping=[MaxRounds(rounds)], check_conservation=False)
        start = time.perf_counter()
        sim.run(loads.copy(), SEED)
        return time.perf_counter() - start

    # Interleave the three variants inside each repeat (plain → off → on)
    # so frequency scaling and cache warmth hit all of them alike.
    # Overheads are estimated via _median_ratio; throughputs report
    # best-of-repeats as usual.
    plain_ts, off_ts, on_ts = [], [], []
    run_plain()  # shared warmup: first-touch allocations, kernel caches
    for _ in range(repeats):
        plain_ts.append(run_plain())
        off_ts.append(run_instrumented())
        previous = set_recorder(Recorder(enabled=True, role="bench"))
        try:
            on_ts.append(run_instrumented())
        finally:
            set_recorder(previous)

    return {
        "n": topo.n,
        "mode": mode,
        "rounds": rounds,
        "repeats": repeats,
        "plain_rounds_per_sec": round(rounds / min(plain_ts), 1),
        "tracing_off_rounds_per_sec": round(rounds / min(off_ts), 1),
        "tracing_on_rounds_per_sec": round(rounds / min(on_ts), 1),
        "tracing_off_overhead": round(_median_ratio(off_ts, plain_ts) - 1.0, 4),
        "tracing_on_overhead": round(_median_ratio(on_ts, plain_ts) - 1.0, 4),
    }


def measure_endpoints_overhead(side, mode, rounds, repeats: int = 5,
                               backend: str | None = None) -> dict:
    """Cost of serving the HTTP observability plane while a run is live.

    Both variants run the instrumented :class:`Simulator` loop with an
    enabled tracing recorder installed — the recording cost itself is
    already metered by :func:`measure_telemetry_overhead`; this row
    isolates the *serve-side* cost (the ``--serve-metrics`` thread plus
    snapshot locking on the shared recorder):

    - ``endpoints off``: recorder installed, no server;
    - ``endpoints on``: same, with a live :class:`MetricsServer` bound to
      an ephemeral loopback port; ``/metrics`` is scraped once per repeat
      *outside* the timed window to prove the plane answers.

    ``endpoints_overhead`` is the fractional cost of keeping the plane
    up; the telemetry acceptance requires <= 2% at full size.
    """
    from repro.observability.recorder import Recorder, set_recorder
    from repro.observability.server import get_status_board, start_metrics_server

    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, mode == "discrete")

    def run_once() -> float:
        bal = _make_balancer(topo, mode, "diffusion", backend)
        sim = Simulator(bal, stopping=[MaxRounds(rounds)], check_conservation=False)
        start = time.perf_counter()
        sim.run(loads.copy(), SEED)
        return time.perf_counter() - start

    # Each timed run gets a fresh recorder (a reused one accumulates
    # events across repeats, slowing later windows asymmetrically).
    off_ts, on_ts = [], []
    scrape_bytes = 0
    previous = set_recorder(Recorder(enabled=True, role="bench"))
    try:
        run_once()  # warmup: first-touch allocations, kernel caches
        for _ in range(repeats):
            set_recorder(Recorder(enabled=True, role="bench"))
            off_ts.append(run_once())
            rec = Recorder(enabled=True, role="bench")
            set_recorder(rec)
            srv = start_metrics_server("127.0.0.1:0", recorder=rec)
            try:
                on_ts.append(run_once())
                # Liveness proof, deliberately outside the timed window:
                # the gate meters coexistence cost, not scrape traffic.
                from urllib.request import urlopen
                with urlopen(srv.url + "/metrics", timeout=5) as resp:
                    scrape_bytes = len(resp.read())
            finally:
                srv.stop()
    finally:
        set_recorder(previous)
        get_status_board().clear()

    return {
        "n": topo.n,
        "mode": mode,
        "rounds": rounds,
        "repeats": repeats,
        "endpoints_off_rounds_per_sec": round(rounds / min(off_ts), 1),
        "endpoints_on_rounds_per_sec": round(rounds / min(on_ts), 1),
        "endpoints_overhead": round(_median_ratio(on_ts, off_ts) - 1.0, 4),
        "scrape_bytes": scrape_bytes,
    }


def measure_backend_rows(smoke: bool, grid_rows: list[dict] | None = None) -> list[dict]:
    """Headline (n=4096, B=64) diffusion rows for every available backend.

    The backend that just ran the main grid already measured the exact
    same configuration; its rows are **reused** rather than re-measured —
    the (4096, B=64) cells are the slowest in the suite, and a second
    independent measurement under the same (n, B, mode, scheme, backend)
    key would shadow the main-grid row in the regression guard's lookup.
    """
    grid_rows = grid_rows or []
    rows = []
    rounds = 30 if smoke else 200
    for backend in available_backends():
        for mode in ("continuous", "discrete"):
            reused = next(
                (
                    r for r in grid_rows
                    if r["n"] == 4096 and r["replicas"] == 64 and r["mode"] == mode
                    and r["scheme"] == "diffusion" and r["backend"] == backend
                ),
                None,
            )
            row = reused if reused is not None else measure(
                64, 64, mode, rounds, repeats=3, backend=backend
            )
            rows.append(row)
            note = " (from main grid)" if reused is not None else ""
            print(
                f"{'backend':12s} n={row['n']:5d} B=64  {mode:10s} [{backend}]: "
                f"serial {row['serial_replica_rounds_per_sec']:>10.1f} rr/s  "
                f"batched {row['batched_replica_rounds_per_sec']:>10.1f} rr/s  "
                f"speedup {row['speedup']:.2f}x{note}"
            )
    return rows


def run_suite(smoke: bool = False, backend: str | None = None,
              dist_workers: list[str] | None = None) -> dict:
    """The full grid; ``smoke`` shrinks the round counts for CI.

    ``dist_workers`` points the distributed section at already-running
    ``repro-lb worker`` addresses (the CI distributed leg launches two
    over TCP loopback); by default two local workers are spawned for the
    duration of the section.
    """
    backend = resolve_backend(backend)
    rows = []
    grid = [
        # (side, replicas, mode, rounds, scheme)
        (16, 1, "continuous", 60 if smoke else 400, "diffusion"),
        (16, 64, "continuous", 60 if smoke else 400, "diffusion"),
        (16, 64, "discrete", 60 if smoke else 400, "diffusion"),
        (64, 1, "continuous", 30 if smoke else 200, "diffusion"),
        (64, 64, "continuous", 30 if smoke else 200, "diffusion"),
        (64, 64, "discrete", 30 if smoke else 200, "diffusion"),
        (16, 64, "continuous", 60 if smoke else 400, "matching-de"),
        (16, 64, "discrete", 60 if smoke else 400, "matching-de"),
        (64, 64, "continuous", 20 if smoke else 60, "matching-de"),
        (64, 64, "discrete", 20 if smoke else 60, "matching-de"),
    ]
    for side, replicas, mode, rounds, scheme in grid:
        row = measure(side, replicas, mode, rounds, scheme=scheme, backend=backend)
        rows.append(row)
        print(
            f"{scheme:12s} n={row['n']:5d} B={replicas:3d} {mode:10s} [{row['backend']}]: "
            f"serial {row['serial_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"batched {row['batched_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"speedup {row['speedup']:.2f}x"
        )
    backend_rows = measure_backend_rows(smoke, grid_rows=rows)
    cpus = _cpu_count()
    shard_workers = min(SHARD_WORKERS, max(cpus, 2))
    sharded_rows = [
        measure_sharded(64, 64 if smoke else 256, "continuous",
                        10 if smoke else 200, shard_workers),
        measure_sharded(64, 64 if smoke else 256, "discrete",
                        10 if smoke else 100, shard_workers),
    ]
    for row in sharded_rows:
        print(
            f"{'sharded':12s} n={row['n']:5d} B={row['replicas']:3d} {row['mode']:10s} "
            f"K={row['workers']}: vectorized {row['vectorized_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"sharded {row['sharded_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"speedup {row['sharded_speedup']:.2f}x"
        )

    # Node-axis partitioned section: one giant graph split into P
    # halo-exchanging blocks vs the single-block serial run (B = 1).
    # Smoke uses a 4096-node torus (records only — worker startup
    # dominates at smoke sizes); full runs measure the 65536-node gate
    # size.  Halo traffic is part of every row.
    part_side = 64 if smoke else PARTITION_GATE_SIDE
    part_rounds = 20 if smoke else 100
    partitioned_rows = [
        measure_partitioned(part_side, "continuous", part_rounds, pmode="inprocess", backend=backend),
        measure_partitioned(part_side, "discrete", part_rounds, pmode="inprocess", backend=backend),
        measure_partitioned(part_side, "continuous", part_rounds, pmode="process", backend=backend),
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process", backend=backend),
        measure_partitioned(part_side, "discrete", part_rounds, partitions=2, pmode="process",
                            backend=backend),
        # Same process-mode row over TCP sockets: the wire a multi-host
        # deployment pays, yardsticked against pipes on the same host.
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process",
                            backend=backend, transport="tcp"),
        # Split-phase rows: the same discrete process run with
        # communication/computation overlap on, over pipes and TCP.
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process",
                            backend=backend, overlap=True),
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process",
                            backend=backend, transport="tcp", overlap=True),
        # Delta-frame pair: a near-convergence discrete run where most
        # halo rows are unchanged round-to-round, dense vs delta framing.
        # The byte counters are deterministic; the delta-frames gate
        # requires the second row to move strictly fewer bytes.
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process",
                            backend=backend, near_balanced=True),
        measure_partitioned(part_side, "discrete", part_rounds, pmode="process",
                            backend=backend, overlap=True, delta=True,
                            near_balanced=True),
    ]
    for row in partitioned_rows:
        wire = f", {row['transport']}" if row.get("transport") else ""
        flags = ("+overlap" if row.get("overlap") else "") + (
            "+delta" if row.get("delta_frames") else "")
        print(
            f"{'partitioned':12s} n={row['n']:5d} P={row['partitions']} "
            f"{row['mode']:10s} [{row['partition_mode']}{wire}{flags}, {row['backend']}]: "
            f"single {row['single_rounds_per_sec']:>8.1f} r/s  "
            f"partitioned {row['partitioned_rounds_per_sec']:>8.1f} r/s  "
            f"speedup {row['partitioned_speedup']:.2f}x  "
            f"halo {row['halo_values_per_round']:.0f} values "
            f"/ {row['halo_bytes_per_round']:.0f} B per round"
        )

    # Distributed section: the rendezvous dispatcher driving real
    # `repro-lb worker` processes over TCP loopback.
    distributed = measure_distributed_section(smoke, dist_workers)

    # Transport microbench: the frame layer itself, per channel.
    transport_section = measure_transport_section(smoke)

    # Telemetry overhead: the instrumented round loop with tracing off
    # must cost (almost) nothing vs the plain pre-telemetry loop.
    telemetry_row = measure_telemetry_overhead(
        64, "continuous", 40 if smoke else 200, repeats=5 if smoke else 15,
        backend=backend)
    print(
        f"{'telemetry':12s} n={telemetry_row['n']:5d} {telemetry_row['mode']:10s}: "
        f"plain {telemetry_row['plain_rounds_per_sec']:>8.1f} r/s  "
        f"tracing-off overhead {telemetry_row['tracing_off_overhead']:+.1%}  "
        f"tracing-on overhead {telemetry_row['tracing_on_overhead']:+.1%}"
    )

    # HTTP observability plane: a live --serve-metrics endpoint must not
    # slow a traced run beyond noise.
    endpoints_row = measure_endpoints_overhead(
        64, "continuous", 40 if smoke else 200, repeats=5 if smoke else 15,
        backend=backend)
    print(
        f"{'endpoints':12s} n={endpoints_row['n']:5d} {endpoints_row['mode']:10s}: "
        f"off {endpoints_row['endpoints_off_rounds_per_sec']:>8.1f} r/s  "
        f"serve-metrics overhead {endpoints_row['endpoints_overhead']:+.1%}  "
        f"scrape {endpoints_row['scrape_bytes']} B"
    )

    def _row(n, replicas, mode, scheme):
        return next(
            r for r in rows
            if r["n"] == n and r["replicas"] == replicas
            and r["mode"] == mode and r["scheme"] == scheme
        )

    def _backend_row(mode, name):
        return next(
            (r for r in backend_rows if r["mode"] == mode and r["backend"] == name), None
        )

    headline = _row(4096, 64, "continuous", "diffusion")
    discrete = _row(4096, 64, "discrete", "diffusion")
    de = _row(4096, 64, "continuous", "matching-de")
    sharded = sharded_rows[0]
    parallel_host = cpus >= 4
    part_gate = next(
        r for r in partitioned_rows
        if r["partition_mode"] == "process" and r["mode"] == "discrete"
        and not r["overlap"] and r["transport"] == "mp-pipe"
        and r["loads"] == "default" and r["partitions"] == PARTITION_BLOCKS
    )
    overlap_gate = next(
        r for r in partitioned_rows
        if r["overlap"] and not r["delta_frames"]
        and r["transport"] == "mp-pipe" and r["loads"] == "default"
    )
    delta_off = next(
        r for r in partitioned_rows
        if r["loads"] == "near-balanced" and not r["delta_frames"]
    )
    delta_on = next(
        r for r in partitioned_rows
        if r["loads"] == "near-balanced" and r["delta_frames"]
    )
    delta_ratio = (
        round(delta_on["halo_bytes_per_round"] / delta_off["halo_bytes_per_round"], 3)
        if delta_off["halo_bytes_per_round"] else None
    )
    numba_disc = _backend_row("discrete", "numba")
    scipy_disc = _backend_row("discrete", "scipy")
    numba_ratio = None
    if numba_disc is not None and scipy_disc is not None:
        numba_ratio = round(
            numba_disc["batched_replica_rounds_per_sec"]
            / scipy_disc["batched_replica_rounds_per_sec"],
            3,
        )
    return {
        "benchmark": "bench_ensemble",
        "units": "replica-rounds per second (higher is better)",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": cpus,
        },
        "backends_available": available_backends(),
        "acceptance": {
            "batched": {
                "criterion": "EnsembleSimulator B=64 >= 4x rounds/sec of 64 sequential "
                "Simulator.run calls on a 4096-node torus (continuous diffusion).  The "
                "original PR-1 gate was 5x; the backend seam then sped the *serial* side "
                "~20% (matvecs now hit the C kernels directly instead of the sparse-array "
                "wrapper), shrinking the ratio while batched throughput was unchanged, so "
                "the floor is recalibrated against the faster serial baseline",
                "speedup": headline["speedup"],
                "passed": headline["speedup"] >= 4.0,
            },
            "discrete": {
                "criterion": "discrete diffusion B=64 on the 4096-node torus > the 1.346x the "
                "int64-division kernel measured (the reciprocal floor-division kernel speeds "
                "the serial side too, so absolute throughput gains ~30% while the ratio "
                "moves less)",
                "speedup": discrete["speedup"],
                "batched_replica_rounds_per_sec": discrete["batched_replica_rounds_per_sec"],
                "previous_batched_replica_rounds_per_sec": 9476.7,
                "passed": discrete["speedup"] > 1.346,
            },
            "numba-fused-discrete": {
                "criterion": "fused numba discrete round (n=4096, B=64) >= "
                f"{NUMBA_DISCRETE_GATE}x the same-host scipy backend's batched throughput "
                "(the committed scipy-host baseline measured 12595.2 rr/s, so the target is "
                ">= ~19k rr/s on comparable hardware); recorded but not gated when numba "
                "is unavailable or at smoke sizes",
                "available": numba_disc is not None,
                "speedup_vs_scipy": numba_ratio,
                "batched_replica_rounds_per_sec": (
                    numba_disc["batched_replica_rounds_per_sec"] if numba_disc else None
                ),
                "passed": (
                    numba_ratio >= NUMBA_DISCRETE_GATE
                    if (numba_ratio is not None and not smoke)
                    else None
                ),
            },
            "dimension-exchange": {
                "criterion": "batched per-replica Luby matchings B=64 on the 4096-node torus "
                ">= 2x the serial dimension-exchange loop",
                "speedup": de["speedup"],
                "passed": de["speedup"] >= 2.0,
            },
            "sharded": {
                "criterion": "sharded B=256 (K process-local ensemble shards) >= 2x the "
                "single-process vectorized path on the 4096-node torus; applies to hosts "
                "with >= 4 usable cores — core count is detected at check time, so CI "
                "runners enforce the gate while on smaller hosts the measured ratio is "
                "recorded but not gated (process parallelism cannot exceed the core count)",
                "speedup": sharded["sharded_speedup"],
                "workers": sharded["workers"],
                "cpus": cpus,
                "passed": sharded["sharded_speedup"] >= 2.0 if parallel_host else None,
            },
            "partitioned": {
                "criterion": "node-axis partitioned execution (P=4 persistent worker "
                "processes + pipe halo exchange, discrete diffusion, B=1) beats the "
                "single-block serial run on the 65536-node torus (>= 1.0x) on hosts "
                "with >= 4 usable cores; trajectories are bit-for-bit identical, so "
                "the row measures pure execution speedup plus the halo traffic paid. "
                "Smoke sizes and smaller hosts record the measured ratio with "
                "passed: null (CI enforces the gate via a full-size check-time row)",
                "speedup": part_gate["partitioned_speedup"],
                "partitions": part_gate["partitions"],
                "n": part_gate["n"],
                "halo_values_per_round": part_gate["halo_values_per_round"],
                "cpus": cpus,
                "passed": (
                    part_gate["partitioned_speedup"] >= 1.0
                    if (parallel_host and not smoke)
                    else None
                ),
            },
            "overlap": {
                "criterion": "split-phase process execution (post sends, compute "
                "interior rows, drain halos, compute boundary rows) keeps >= 1.0x "
                "the single-block serial run on full-size hosts with >= 4 usable "
                "cores; trajectories stay bit-for-bit identical, so the row is pure "
                "schedule overhead vs overlap win.  Smoke sizes and smaller hosts "
                "record the ratios with passed: null (CI enforces via the "
                "full-size check-time overlap row)",
                "speedup": overlap_gate["partitioned_speedup"],
                "vs_no_overlap": round(
                    overlap_gate["partitioned_rounds_per_sec"]
                    / part_gate["partitioned_rounds_per_sec"], 3),
                "transport": overlap_gate["transport"],
                "n": overlap_gate["n"],
                "cpus": cpus,
                "passed": (
                    overlap_gate["partitioned_speedup"] >= 1.0
                    if (parallel_host and not smoke)
                    else None
                ),
            },
            "delta-frames": {
                "criterion": "near-convergence discrete delta framing (changed-row "
                "index + values, dense fallback when not smaller) moves strictly "
                "fewer halo bytes per round than dense framing on the same run.  "
                "Byte counters are deterministic, so the gate is enforced at every "
                "size and on every host",
                "halo_bytes_per_round_dense": delta_off["halo_bytes_per_round"],
                "halo_bytes_per_round_delta": delta_on["halo_bytes_per_round"],
                "bytes_ratio": delta_ratio,
                "passed": (
                    delta_on["halo_bytes_per_round"] < delta_off["halo_bytes_per_round"]
                ),
            },
            "telemetry": {
                "criterion": "the instrumented serial round loop with tracing off "
                "(recorder disabled — the production default) costs <= 2% over a "
                "verbatim copy of the plain pre-telemetry loop on the 4096-node "
                "torus; the tracing-on cost is recorded alongside.  Smoke sizes "
                "record the measured overheads with passed: null (short loops "
                "are too noise-dominated to gate a 2% margin)",
                "tracing_off_overhead": telemetry_row["tracing_off_overhead"],
                "tracing_on_overhead": telemetry_row["tracing_on_overhead"],
                "endpoints_criterion": "a live --serve-metrics HTTP plane "
                "(ephemeral loopback MetricsServer on a traced run, /metrics "
                "scraped once per repeat outside the timed window) costs "
                "<= 2% over the same traced run without the server",
                "endpoints_overhead": endpoints_row["endpoints_overhead"],
                "passed": (
                    telemetry_row["tracing_off_overhead"] <= 0.02
                    and endpoints_row["endpoints_overhead"] <= 0.02
                    if not smoke else None
                ),
            },
            "transport-zero-copy": {
                "criterion": "protocol-5 out-of-band frames move "
                f">= {TRANSPORT_GATE_SLAB_MIB} MiB slabs at "
                f">= {TRANSPORT_GATE_MIN_SPEEDUP}x the in-band (pickle-blob) "
                "framing's MB/s over tcp or mp-pipe.  Smoke sizes record the "
                "measured ratios with passed: null (CI enforces via a "
                "full-size check-time measurement)",
                "speedups": {
                    r["transport"]: r["zero_copy_speedup"]
                    for r in transport_section["rows"]
                },
                "passed": (
                    not transport_gate_failures(transport_section["rows"])
                    if not smoke
                    else None
                ),
            },
        },
        "results": rows,
        "backend_results": backend_rows,
        "sharded": sharded_rows,
        "partitioned": partitioned_rows,
        "distributed": distributed,
        "transport": transport_section,
        "telemetry": telemetry_row,
        "endpoints": endpoints_row,
        "smoke": smoke,
    }


def _row_key(row: dict) -> tuple:
    return (
        row["n"],
        row["replicas"],
        row["mode"],
        row.get("scheme", "diffusion"),
        row.get("backend", "scipy"),
    )


def check_against(report: dict, baseline_path: Path, tolerance: float = 0.30) -> list[str]:
    """Regression guard: compare measured speedups to the committed baseline.

    Speedups are machine-normalized throughput ratios (both sides of a
    row run on the same host), so they transfer across machines far
    better than raw replica-rounds/sec.  A smoke-sized report compares
    against the baseline's ``smoke_results``/``smoke_backend_results``
    (smoke rounds amortize fixed overheads less, so full-run speedups
    would be a biased yardstick).  Rows are matched on
    ``(n, B, mode, scheme, backend)``; rows with no baseline counterpart
    (e.g. numba rows against a scipy-only baseline) are skipped.  A row
    regresses when its measured speedup falls more than ``tolerance``
    below the baseline's.  Returns failure strings (empty = pass).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    if report.get("smoke") and "smoke_results" in baseline:
        reference = list(baseline["smoke_results"]) + list(
            baseline.get("smoke_backend_results", [])
        )
    else:
        reference = list(baseline["results"]) + list(baseline.get("backend_results", []))
    base_rows = {_row_key(r): r["speedup"] for r in reference}
    failures = []
    for row in list(report["results"]) + list(report.get("backend_results", [])):
        base = base_rows.get(_row_key(row))
        if base is None:
            continue
        floor = (1.0 - tolerance) * base
        if row["speedup"] < floor:
            failures.append(
                f"{_row_key(row)}: speedup {row['speedup']:.3f}x < {floor:.3f}x "
                f"(baseline {base:.3f}x - {tolerance:.0%})"
            )
    return failures


def skipped_gate_names(report: dict) -> list[str]:
    """Acceptance gates recorded but not enforced on this host.

    A gate whose precondition the host lacks (< 4 cores for the sharded
    and partitioned gates, no numba for the fused gate, smoke sizes for
    full-run-only criteria) carries ``passed: null``.  The ``--check``
    summary line names these explicitly — a green line that silently
    omitted unenforced gates used to read as "everything was gated".
    """
    return sorted(
        name
        for name, acc in report.get("acceptance", {}).items()
        if acc.get("passed", False) is None
    )


def check_summary_line(report: dict, baseline_path) -> str:
    """The summary printed when ``--check`` finds no regression."""
    line = f"no >30% speedup regression vs {baseline_path}; runtime gates OK"
    skipped = skipped_gate_names(report)
    if skipped:
        line += (
            "; gates skipped on this host (passed: null): " + ", ".join(skipped)
        )
    return line


def runtime_gates(report: dict, smoke: bool) -> list[str]:
    """Host-condition gates evaluated at check time (not baseline-relative).

    - fused-numba discrete must beat the same-host scipy row (full runs:
      >= NUMBA_DISCRETE_GATE; smoke: >= NUMBA_DISCRETE_SMOKE_FLOOR, a
      pessimization guard) whenever numba is available;
    - the >=2x sharded acceptance is enforced on >=4-core hosts.  In
      smoke mode the grid's sharded rows are startup-dominated, so a
      dedicated full-size gate row is measured instead (see main()).
    """
    failures = []
    acc = report["acceptance"].get("numba-fused-discrete", {})
    ratio = acc.get("speedup_vs_scipy")
    if ratio is not None:
        floor = NUMBA_DISCRETE_SMOKE_FLOOR if smoke else NUMBA_DISCRETE_GATE
        if ratio < floor:
            failures.append(
                f"numba fused discrete: {ratio:.3f}x scipy backend < required {floor}x"
            )
    # Delta-frame byte reduction is deterministic (counters, not timings),
    # so it is enforced on every host and at smoke sizes too.
    delta = report["acceptance"].get("delta-frames", {})
    if delta.get("passed") is False:
        failures.append(
            f"delta frames: {delta['halo_bytes_per_round_delta']} B/round not < "
            f"{delta['halo_bytes_per_round_dense']} B/round dense"
        )
    return failures


# ----------------------------------------------------------------------
# pytest entry points (smoke-sized)
# ----------------------------------------------------------------------
def test_ensemble_headline_speedup():
    """B=64 lockstep beats 64 sequential runs on the 4096-node torus.

    The full-size baseline gates the >=4x acceptance; at smoke rounds the
    fixed per-run overheads amortize less, so this asserts a conservative
    3.5x floor.
    """
    row = measure(64, 64, "continuous", rounds=30)
    assert row["speedup"] >= 3.5, f"expected >=3.5x, measured {row['speedup']}x"


def test_ensemble_beats_serial_small_torus():
    row = measure(16, 64, "continuous", rounds=60)
    assert row["speedup"] > 1.0


def test_dimension_exchange_batched_speedup():
    """Batched per-replica matchings beat the serial DE loop on the big torus."""
    row = measure(64, 64, "continuous", rounds=10, scheme="matching-de")
    assert row["speedup"] > 2.0, f"expected >2x, measured {row['speedup']}x"


def test_sharded_matches_vectorized_throughput_order():
    """Sharded execution stays within sanity range of vectorized even on
    hosts where process parallelism cannot pay off (the equivalence tests
    cover correctness; this guards against pathological overhead)."""
    row = measure_sharded(16, 32, "continuous", rounds=60, workers=2, repeats=2)
    assert row["sharded_speedup"] > 0.1, row


def test_partitioned_row_well_formed():
    """The partitioned bench row runs both modes and reports halo traffic.

    Correctness (bit-for-bit parity) is covered by the property tests;
    this guards the bench plumbing and against pathological overhead.
    """
    for pmode in ("inprocess", "process"):
        row = measure_partitioned(16, "discrete", 10, partitions=2, pmode=pmode, repeats=1)
        assert row["partitions"] == 2 and row["partition_mode"] == pmode
        assert row["halo_values_exchanged"] > 0
        assert row["partitioned_rounds_per_sec"] > 0
        assert row["partitioned_speedup"] > 0.01, row


def test_partitioned_row_reports_link_bytes():
    """Process-mode rows carry the per-link bytes/round counters the
    distributed section documents (transport channels meter payloads)."""
    row = measure_partitioned(16, "discrete", 10, partitions=2, pmode="process", repeats=1)
    assert row["halo_bytes_per_round"] > 0
    assert row["link_bytes_per_round"]
    assert all(v > 0 for v in row["link_bytes_per_round"].values())
    inproc = measure_partitioned(16, "discrete", 5, partitions=2, pmode="inprocess", repeats=1)
    assert inproc["halo_bytes_per_round"] == 0  # no serialization in-process


def test_partitioned_overlap_delta_rows_well_formed():
    """Overlap/delta rows carry their flags and the near-convergence
    delta pair moves strictly fewer bytes (pytest-sized delta gate)."""
    dense = measure_partitioned(16, "discrete", 12, partitions=2, pmode="process",
                                repeats=1, near_balanced=True)
    delta = measure_partitioned(16, "discrete", 12, partitions=2, pmode="process",
                                repeats=1, overlap=True, delta=True,
                                near_balanced=True)
    assert not dense["overlap"] and not dense["delta_frames"]
    assert delta["overlap"] and delta["delta_frames"]
    assert dense["loads"] == delta["loads"] == "near-balanced"
    assert 0 < delta["halo_bytes_per_round"] < dense["halo_bytes_per_round"], (
        dense["halo_bytes_per_round"], delta["halo_bytes_per_round"])


def test_telemetry_overhead_row_well_formed():
    """The instrumented-vs-plain row reports all three timings and the
    disabled path is not a pathological slowdown (the precise <= 2% gate
    is full-size-only; pytest sizes assert a loose sanity bound)."""
    row = measure_telemetry_overhead(16, "continuous", 60, repeats=2)
    assert row["plain_rounds_per_sec"] > 0
    assert row["tracing_off_rounds_per_sec"] > 0
    assert row["tracing_on_rounds_per_sec"] > 0
    assert row["tracing_off_overhead"] < 0.5, row
    from repro.observability import NULL_RECORDER
    from repro.observability.recorder import get_recorder

    assert get_recorder() is NULL_RECORDER  # bench restores the default


def test_endpoints_overhead_row_well_formed():
    """The serve-plane row reports both timings, a live scrape, and no
    pathological slowdown (the precise <= 2% gate is full-size-only;
    pytest sizes assert a loose sanity bound) — and leaves no recorder,
    server, or board state behind."""
    row = measure_endpoints_overhead(16, "continuous", 60, repeats=2)
    assert row["endpoints_off_rounds_per_sec"] > 0
    assert row["endpoints_on_rounds_per_sec"] > 0
    assert row["endpoints_overhead"] < 0.5, row
    assert row["scrape_bytes"] > 0  # the plane answered mid-run
    from repro.observability import NULL_RECORDER
    from repro.observability.recorder import get_recorder
    from repro.observability.server import get_status_board

    assert get_recorder() is NULL_RECORDER  # bench restores the default
    assert set(get_status_board().snapshot()) == {"uptime_s"}  # board cleared


def test_check_summary_lists_skipped_gates():
    """Gates a host cannot enforce must be named in the --check summary,
    not silently dropped (the passed: null reporting fix)."""
    report = {
        "acceptance": {
            "batched": {"passed": True},
            "sharded": {"passed": None},
            "partitioned": {"passed": None},
            "discrete": {"passed": False},
        }
    }
    assert skipped_gate_names(report) == ["partitioned", "sharded"]
    line = check_summary_line(report, "BENCH_ensemble.json")
    assert "gates skipped on this host (passed: null): partitioned, sharded" in line
    clean = {"acceptance": {"batched": {"passed": True}}}
    assert "skipped" not in check_summary_line(clean, "BENCH_ensemble.json")


def test_transport_microbench_zero_copy_wins_on_large_slabs():
    """Zero-copy frames beat the in-band pickle blob on full-size slabs
    over at least one real wire (the ISSUE-6 acceptance, pytest-sized)."""
    rows = [
        measure_transport(t, TRANSPORT_GATE_SLAB_MIB, 5, repeats=2)
        for t in ("mp-pipe", "tcp")
    ]
    for row in rows:
        assert row["zero_copy_mb_per_sec"] > 0 and row["in_band_mb_per_sec"] > 0
    assert not transport_gate_failures(rows), rows


def test_backend_rows_cover_available_backends():
    """Every available backend produces a well-formed headline row pair."""
    rows = [
        measure(16, 8, mode, rounds=20, repeats=1, backend=name)
        for name in available_backends()
        for mode in ("continuous", "discrete")
    ]
    assert {r["backend"] for r in rows} == set(available_backends())
    assert all(r["batched_replica_rounds_per_sec"] > 0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI-sized run")
    parser.add_argument("--out", type=Path, default=None, help="write the JSON baseline here")
    parser.add_argument(
        "--backend", default=None, choices=BACKEND_CHOICES,
        help="kernel backend for the main grid (default: auto = fastest available); "
        "the per-backend section always covers every available backend",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 on "
        ">30%% regression in any matched row or on a failed runtime gate",
    )
    parser.add_argument(
        "--partitioned-out", type=Path, default=None, metavar="PATH",
        help="additionally write just the node-axis partitioned section "
        "(rows + gate + halo counters) as a standalone JSON artifact",
    )
    parser.add_argument(
        "--dist-workers", nargs="*", default=None, metavar="HOST:PORT",
        help="addresses of running 'repro-lb worker' processes for the "
        "distributed section (default: spawn 2 local workers for its duration)",
    )
    args = parser.parse_args(argv)
    report = run_suite(smoke=args.smoke, backend=args.backend,
                       dist_workers=args.dist_workers)
    if args.out is not None and not args.smoke:
        # A committed baseline carries a smoke-sized row set too, so the CI
        # smoke guard compares like against like.  They are measured in a
        # fresh subprocess because that is what the CI guard runs: the full
        # grid leaves warmed allocator/cache state behind that inflates
        # in-process smoke numbers by ~30%.
        print("-- smoke rows for the regression guard (fresh process) --")
        import subprocess
        import tempfile

        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run(
                [sys.executable, __file__, "--smoke", "--out", tmp.name],
                check=True,
                env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "src")},
            )
            smoke_report = json.loads(Path(tmp.name).read_text())
            report["smoke_results"] = smoke_report["results"]
            report["smoke_backend_results"] = smoke_report["backend_results"]
    failures: list[str] = []
    cpus = _cpu_count()
    if args.check is not None and args.smoke and cpus >= 4:
        # The smoke grid's sharded rows are pool-startup-dominated, so the
        # >=2x gate gets its own full-size measurement on gate-eligible
        # (>=4-core) hosts — this is the "detect usable cores at check
        # time" half of the sharded acceptance.  400 rounds keep pool
        # startup well under 10% of the measured window.
        gate_row = measure_sharded(
            64, 256, "continuous", 400, min(SHARD_WORKERS, cpus), repeats=2
        )
        report["sharded_gate"] = gate_row
        print(
            f"{'sharded-gate':12s} n={gate_row['n']:5d} B={gate_row['replicas']:3d} "
            f"K={gate_row['workers']}: speedup {gate_row['sharded_speedup']:.2f}x "
            f"(>= 2.0 required on this {cpus}-core host)"
        )
        if gate_row["sharded_speedup"] < 2.0:
            failures.append(
                f"sharded gate: {gate_row['sharded_speedup']:.3f}x < 2.0x on a "
                f"{cpus}-core host"
            )
        # Node-axis analogue of the sharded gate: the smoke grid's
        # partitioned rows are worker-startup-dominated, so the >=1.0x
        # acceptance gets its own full-size (n=65536) measurement on
        # gate-eligible hosts.
        pgate = measure_partitioned(
            PARTITION_GATE_SIDE, "discrete", 300, pmode="process", repeats=2,
            backend=args.backend,
        )
        report["partitioned_gate"] = pgate
        print(
            f"{'part-gate':12s} n={pgate['n']:5d} P={pgate['partitions']} "
            f"[{pgate['partition_mode']}]: speedup {pgate['partitioned_speedup']:.2f}x "
            f"(>= 1.0 required on this {cpus}-core host; "
            f"halo {pgate['halo_values_per_round']:.0f}/round)"
        )
        if pgate["partitioned_speedup"] < 1.0:
            failures.append(
                f"partitioned gate: {pgate['partitioned_speedup']:.3f}x < 1.0x on a "
                f"{cpus}-core host"
            )
        # Split-phase gate pair: the same full-size row with overlap on
        # must (a) still beat the single-block serial run and (b) not
        # regress the synchronous row it replaces — the >= 1.0x
        # no-regression half of the overlap acceptance.
        ogate = measure_partitioned(
            PARTITION_GATE_SIDE, "discrete", 300, pmode="process", repeats=2,
            backend=args.backend, overlap=True,
        )
        ogate["vs_no_overlap"] = round(
            ogate["partitioned_rounds_per_sec"] / pgate["partitioned_rounds_per_sec"], 3
        )
        report["overlap_gate"] = ogate
        print(
            f"{'overlap-gate':12s} n={ogate['n']:5d} P={ogate['partitions']} "
            f"[{ogate['partition_mode']}+overlap]: speedup "
            f"{ogate['partitioned_speedup']:.2f}x vs serial, "
            f"{ogate['vs_no_overlap']:.2f}x vs sync rounds "
            f"(both >= 1.0 required on this {cpus}-core host)"
        )
        if ogate["partitioned_speedup"] < 1.0:
            failures.append(
                f"overlap gate: {ogate['partitioned_speedup']:.3f}x < 1.0x vs serial "
                f"on a {cpus}-core host"
            )
        if ogate["vs_no_overlap"] < 1.0:
            failures.append(
                f"overlap gate: {ogate['vs_no_overlap']:.3f}x < 1.0x vs the "
                f"synchronous partitioned row on a {cpus}-core host"
            )
    if args.check is not None and args.smoke:
        # The transport acceptance is full-slab-only (small slabs are
        # latency-dominated), so a smoke --check measures its own
        # full-size rows for the two real wires.  Unlike the core-count
        # gates this one runs on any host: a single channel pair needs
        # no parallelism.
        tgate_rows = [
            measure_transport(t, TRANSPORT_GATE_SLAB_MIB, 10)
            for t in ("mp-pipe", "tcp")
        ]
        report["transport_gate"] = tgate_rows
        for row in tgate_rows:
            print(
                f"{'trans-gate':12s} {row['transport']:9s} "
                f"slab={row['slab_mib']:.0f}MiB: zero-copy "
                f"{row['zero_copy_mb_per_sec']:>8.1f} MB/s  speedup "
                f"{row['zero_copy_speedup']:.2f}x "
                f"(>= {TRANSPORT_GATE_MIN_SPEEDUP} on tcp or mp-pipe required)"
            )
        failures.extend(transport_gate_failures(tgate_rows))
    payload = json.dumps(report, indent=2)
    if args.out is not None:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    if args.partitioned_out is not None:
        section = {
            "benchmark": "bench_ensemble.partitioned",
            "units": "rounds per second (higher is better)",
            "machine": report["machine"],
            "acceptance": report["acceptance"]["partitioned"],
            "acceptance_overlap": report["acceptance"]["overlap"],
            "acceptance_delta_frames": report["acceptance"]["delta-frames"],
            "partitioned": report["partitioned"],
            "smoke": report["smoke"],
        }
        for key in ("partitioned_gate", "overlap_gate"):
            if key in report:
                section[key] = report[key]
        args.partitioned_out.write_text(json.dumps(section, indent=2) + "\n")
        print(f"wrote {args.partitioned_out}")
    if args.check is not None:
        failures.extend(check_against(report, args.check))
        failures.extend(runtime_gates(report, smoke=args.smoke))
        if failures:
            print("REGRESSION vs baseline / failed gates:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(check_summary_line(report, args.check))
    # A smoke run only checks the regression guard / that both engines
    # execute (shared CI runners are too noisy for absolute thresholds);
    # a full run additionally gates on the acceptance criteria (criteria
    # whose precondition the host lacks — <4 cores for sharded, no numba
    # for the fused gate — stay record-only with passed: null).
    if args.smoke:
        return 0
    gated = [a for a in report["acceptance"].values() if a["passed"] is not None]
    return 0 if all(a["passed"] for a in gated) else 1


if __name__ == "__main__":
    sys.exit(main())
