"""Batched-ensemble throughput: EnsembleSimulator vs sequential Simulator runs.

The tentpole claim of the batched execution stack is that running ``B``
Monte-Carlo replicas in lockstep through :class:`EnsembleSimulator` beats
``B`` sequential :class:`Simulator.run` calls by amortizing the per-round
engine overhead and turning the round kernel into one cached sparse
matmat.  This bench measures both sides in *replica-rounds per second*
(one replica advancing one round = 1 unit) on tori of n in {256, 4096}
with B in {1, 64}, continuous and discrete.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_ensemble.py --out BENCH_ensemble.json
    PYTHONPATH=src python benchmarks/bench_ensemble.py --smoke   # CI, ~seconds

or under pytest (smoke-sized, asserts the headline speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.stopping import MaxRounds

SEED = 1234


def _initial_loads(n: int, discrete: bool) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    if discrete:
        return rng.integers(0, 10_000, n).astype(np.int64)
    return rng.uniform(0.0, 10_000.0, n)


def _time_serial(topo, mode: str, loads, replicas: int, rounds: int) -> float:
    """Seconds for ``replicas`` sequential Simulator.run calls of ``rounds`` rounds."""
    bal = DiffusionBalancer(topo, mode=mode)
    rngs = spawn_rngs(SEED, replicas)
    start = time.perf_counter()
    for b in range(replicas):
        Simulator(bal, stopping=[MaxRounds(rounds)]).run(loads, rngs[b])
    return time.perf_counter() - start


def _time_batched(topo, mode: str, loads, replicas: int, rounds: int) -> float:
    """Seconds for one EnsembleSimulator run of ``replicas`` lockstep replicas."""
    bal = DiffusionBalancer(topo, mode=mode)
    ens = EnsembleSimulator(bal, stopping=[MaxRounds(rounds)])
    start = time.perf_counter()
    ens.run(loads, seed=SEED, replicas=replicas)
    return time.perf_counter() - start


def measure(side: int, replicas: int, mode: str, rounds: int, repeats: int = 3) -> dict:
    """One (n, B, mode) comparison; returns the result row.

    Each side is timed ``repeats`` times and the best time is kept — the
    standard way to strip scheduler noise from a shared machine; both
    sides get the same treatment.
    """
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    # Warm the per-topology operator caches so construction cost is not
    # attributed to either side.
    _time_serial(topo, mode, loads, 1, 2)
    _time_batched(topo, mode, loads, min(replicas, 2), 2)
    serial_s = min(_time_serial(topo, mode, loads, replicas, rounds) for _ in range(repeats))
    batched_s = min(_time_batched(topo, mode, loads, replicas, rounds) for _ in range(repeats))
    unit = replicas * rounds  # replica-rounds executed by each side
    return {
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "rounds": rounds,
        "serial_seconds": round(serial_s, 6),
        "batched_seconds": round(batched_s, 6),
        "serial_replica_rounds_per_sec": round(unit / serial_s, 1),
        "batched_replica_rounds_per_sec": round(unit / batched_s, 1),
        "speedup": round(serial_s / batched_s, 3),
    }


def run_suite(smoke: bool = False) -> dict:
    """The full grid; ``smoke`` shrinks the round counts for CI."""
    rows = []
    grid = [
        # (side, replicas, mode, rounds)
        (16, 1, "continuous", 60 if smoke else 400),
        (16, 64, "continuous", 60 if smoke else 400),
        (16, 64, "discrete", 60 if smoke else 400),
        (64, 1, "continuous", 30 if smoke else 200),
        (64, 64, "continuous", 30 if smoke else 200),
        (64, 64, "discrete", 30 if smoke else 200),
    ]
    for side, replicas, mode, rounds in grid:
        row = measure(side, replicas, mode, rounds)
        rows.append(row)
        print(
            f"n={row['n']:5d} B={replicas:3d} {mode:10s}: "
            f"serial {row['serial_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"batched {row['batched_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"speedup {row['speedup']:.2f}x"
        )
    headline = next(r for r in rows if r["n"] == 4096 and r["replicas"] == 64 and r["mode"] == "continuous")
    return {
        "benchmark": "bench_ensemble",
        "units": "replica-rounds per second (higher is better)",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "acceptance": {
            "criterion": "EnsembleSimulator B=64 >= 5x rounds/sec of 64 sequential "
            "Simulator.run calls on a 4096-node torus (continuous diffusion)",
            "speedup": headline["speedup"],
            "passed": headline["speedup"] >= 5.0,
        },
        "results": rows,
    }


# ----------------------------------------------------------------------
# pytest entry points (smoke-sized)
# ----------------------------------------------------------------------
def test_ensemble_headline_speedup():
    """B=64 lockstep beats 64 sequential runs >= 5x on the 4096-node torus."""
    row = measure(64, 64, "continuous", rounds=30)
    assert row["speedup"] >= 5.0, f"expected >=5x, measured {row['speedup']}x"


def test_ensemble_beats_serial_small_torus():
    row = measure(16, 64, "continuous", rounds=60)
    assert row["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI-sized run")
    parser.add_argument("--out", type=Path, default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)
    report = run_suite(smoke=args.smoke)
    payload = json.dumps(report, indent=2)
    if args.out is not None:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    # A smoke run only checks that both engines execute (CI runs on shared
    # runners where the speedup threshold would be noise); the full run
    # gates on the acceptance criterion.
    return 0 if (args.smoke or report["acceptance"]["passed"]) else 1


if __name__ == "__main__":
    sys.exit(main())
