"""Batched + sharded ensemble throughput vs sequential Simulator runs.

The tentpole claim of the batched execution stack is that running ``B``
Monte-Carlo replicas in lockstep through :class:`EnsembleSimulator` beats
``B`` sequential :class:`Simulator.run` calls by amortizing the per-round
engine overhead and turning the round kernel into a handful of large
vectorized operations.  This bench measures both sides in *replica-rounds
per second* (one replica advancing one round = 1 unit) on tori of n in
{256, 4096} with B in {1, 64}, continuous and discrete, for Algorithm 1
(``diffusion``) and random-matching dimension exchange (``matching-de``,
whose batched per-replica matchings landed with the sharding PR).

A separate *sharded* section times ``run_sharded_ensemble`` — the replica
batch split into K process-local ensemble shards — against the
single-process vectorized path on the 4096-node torus at B=256.  The
>=2x sharded acceptance applies to hosts with >=4 usable cores; on a
single-CPU host process parallelism cannot help, so the bench records
the measured ratio with ``passed: null`` and the host's CPU count rather
than inventing a number.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_ensemble.py --out BENCH_ensemble.json
    PYTHONPATH=src python benchmarks/bench_ensemble.py --smoke   # CI, ~seconds

CI runs the smoke grid with ``--check BENCH_ensemble.json``: each
(n, B, mode, scheme) row's measured *speedup* (batched over serial —
machine-normalized throughput) must stay within 30% of the committed
baseline's, turning the smoke run into a regression guard.  Sharded rows
are excluded from the guard: their pool start-up dominates at smoke
sizes and shared runners vary too much in core count.

Under pytest (smoke-sized) the headline speedups are asserted directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines.dimension_exchange import DimensionExchangeBalancer
from repro.core.diffusion import DiffusionBalancer
from repro.graphs.generators import torus_2d
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.sharding import run_sharded_ensemble
from repro.simulation.stopping import MaxRounds

SEED = 1234
SHARD_WORKERS = 4


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_balancer(topo, mode: str, scheme: str):
    if scheme == "diffusion":
        return DiffusionBalancer(topo, mode=mode)
    if scheme == "matching-de":
        return DimensionExchangeBalancer(topo, mode=mode, partner_rule="luby")
    raise ValueError(f"unknown scheme {scheme!r}")


def _initial_loads(n: int, discrete: bool) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    if discrete:
        return rng.integers(0, 10_000, n).astype(np.int64)
    return rng.uniform(0.0, 10_000.0, n)


def _time_serial(topo, mode, scheme, loads, replicas: int, rounds: int) -> float:
    """Seconds for ``replicas`` sequential Simulator.run calls of ``rounds`` rounds."""
    bal = _make_balancer(topo, mode, scheme)
    rngs = spawn_rngs(SEED, replicas)
    start = time.perf_counter()
    for b in range(replicas):
        Simulator(bal, stopping=[MaxRounds(rounds)]).run(loads, rngs[b])
    return time.perf_counter() - start


def _time_batched(topo, mode, scheme, loads, replicas: int, rounds: int) -> float:
    """Seconds for one EnsembleSimulator run of ``replicas`` lockstep replicas."""
    bal = _make_balancer(topo, mode, scheme)
    # serial_singleton=False so the B=1 row keeps measuring the batched
    # kernels themselves (the engine's default would dispatch it serially
    # and the row would tautologically read 1.0).
    ens = EnsembleSimulator(bal, stopping=[MaxRounds(rounds)], serial_singleton=False)
    start = time.perf_counter()
    ens.run(loads, seed=SEED, replicas=replicas)
    return time.perf_counter() - start


def _time_sharded(topo, mode, scheme, loads, replicas: int, rounds: int, workers: int) -> float:
    """Seconds for one sharded run: ``workers`` process-local ensemble blocks."""
    bal = _make_balancer(topo, mode, scheme)
    start = time.perf_counter()
    run_sharded_ensemble(
        bal, loads, seed=SEED, replicas=replicas, workers=workers,
        stopping=[MaxRounds(rounds)],
    )
    return time.perf_counter() - start


def measure(side, replicas, mode, rounds, repeats: int = 5, scheme: str = "diffusion") -> dict:
    """One (n, B, mode, scheme) serial-vs-batched comparison row.

    Each side is timed ``repeats`` times and the best time is kept — the
    standard way to strip scheduler noise from a shared machine; both
    sides get the same treatment.
    """
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    # Warm the per-topology operator caches so construction cost is not
    # attributed to either side.
    _time_serial(topo, mode, scheme, loads, 1, 2)
    _time_batched(topo, mode, scheme, loads, min(replicas, 2), 2)
    serial_s = min(_time_serial(topo, mode, scheme, loads, replicas, rounds) for _ in range(repeats))
    batched_s = min(_time_batched(topo, mode, scheme, loads, replicas, rounds) for _ in range(repeats))
    unit = replicas * rounds  # replica-rounds executed by each side
    return {
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "scheme": scheme,
        "rounds": rounds,
        "serial_seconds": round(serial_s, 6),
        "batched_seconds": round(batched_s, 6),
        "serial_replica_rounds_per_sec": round(unit / serial_s, 1),
        "batched_replica_rounds_per_sec": round(unit / batched_s, 1),
        "speedup": round(serial_s / batched_s, 3),
    }


def measure_sharded(side, replicas, mode, rounds, workers, repeats: int = 3,
                    scheme: str = "diffusion") -> dict:
    """One vectorized-vs-sharded comparison row (same total replica batch)."""
    topo = torus_2d(side, side)
    loads = _initial_loads(topo.n, discrete=mode == "discrete")
    _time_batched(topo, mode, scheme, loads, min(replicas, 2), 2)
    _time_sharded(topo, mode, scheme, loads, min(replicas, 2 * workers), 2, workers)
    vec_s = min(_time_batched(topo, mode, scheme, loads, replicas, rounds) for _ in range(repeats))
    sha_s = min(
        _time_sharded(topo, mode, scheme, loads, replicas, rounds, workers)
        for _ in range(repeats)
    )
    unit = replicas * rounds
    return {
        "n": topo.n,
        "replicas": replicas,
        "mode": mode,
        "scheme": scheme,
        "rounds": rounds,
        "workers": workers,
        "vectorized_seconds": round(vec_s, 6),
        "sharded_seconds": round(sha_s, 6),
        "vectorized_replica_rounds_per_sec": round(unit / vec_s, 1),
        "sharded_replica_rounds_per_sec": round(unit / sha_s, 1),
        "sharded_speedup": round(vec_s / sha_s, 3),
    }


def run_suite(smoke: bool = False) -> dict:
    """The full grid; ``smoke`` shrinks the round counts for CI."""
    rows = []
    grid = [
        # (side, replicas, mode, rounds, scheme)
        (16, 1, "continuous", 60 if smoke else 400, "diffusion"),
        (16, 64, "continuous", 60 if smoke else 400, "diffusion"),
        (16, 64, "discrete", 60 if smoke else 400, "diffusion"),
        (64, 1, "continuous", 30 if smoke else 200, "diffusion"),
        (64, 64, "continuous", 30 if smoke else 200, "diffusion"),
        (64, 64, "discrete", 30 if smoke else 200, "diffusion"),
        (16, 64, "continuous", 60 if smoke else 400, "matching-de"),
        (16, 64, "discrete", 60 if smoke else 400, "matching-de"),
        (64, 64, "continuous", 20 if smoke else 60, "matching-de"),
        (64, 64, "discrete", 20 if smoke else 60, "matching-de"),
    ]
    for side, replicas, mode, rounds, scheme in grid:
        row = measure(side, replicas, mode, rounds, scheme=scheme)
        rows.append(row)
        print(
            f"{scheme:12s} n={row['n']:5d} B={replicas:3d} {mode:10s}: "
            f"serial {row['serial_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"batched {row['batched_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"speedup {row['speedup']:.2f}x"
        )
    cpus = _cpu_count()
    shard_workers = min(SHARD_WORKERS, max(cpus, 2))
    sharded_rows = [
        measure_sharded(64, 64 if smoke else 256, "continuous",
                        10 if smoke else 200, shard_workers),
        measure_sharded(64, 64 if smoke else 256, "discrete",
                        10 if smoke else 100, shard_workers),
    ]
    for row in sharded_rows:
        print(
            f"{'sharded':12s} n={row['n']:5d} B={row['replicas']:3d} {row['mode']:10s} "
            f"K={row['workers']}: vectorized {row['vectorized_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"sharded {row['sharded_replica_rounds_per_sec']:>10.1f} rr/s  "
            f"speedup {row['sharded_speedup']:.2f}x"
        )

    def _row(n, replicas, mode, scheme):
        return next(
            r for r in rows
            if r["n"] == n and r["replicas"] == replicas
            and r["mode"] == mode and r["scheme"] == scheme
        )

    headline = _row(4096, 64, "continuous", "diffusion")
    discrete = _row(4096, 64, "discrete", "diffusion")
    de = _row(4096, 64, "continuous", "matching-de")
    sharded = sharded_rows[0]
    parallel_host = cpus >= 4
    return {
        "benchmark": "bench_ensemble",
        "units": "replica-rounds per second (higher is better)",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": cpus,
        },
        "acceptance": {
            "batched": {
                "criterion": "EnsembleSimulator B=64 >= 5x rounds/sec of 64 sequential "
                "Simulator.run calls on a 4096-node torus (continuous diffusion)",
                "speedup": headline["speedup"],
                "passed": headline["speedup"] >= 5.0,
            },
            "discrete": {
                "criterion": "discrete diffusion B=64 on the 4096-node torus > the 1.346x the "
                "int64-division kernel measured (the reciprocal floor-division kernel speeds "
                "the serial side too, so absolute throughput gains ~30% while the ratio "
                "moves less)",
                "speedup": discrete["speedup"],
                "batched_replica_rounds_per_sec": discrete["batched_replica_rounds_per_sec"],
                "previous_batched_replica_rounds_per_sec": 9476.7,
                "passed": discrete["speedup"] > 1.346,
            },
            "dimension-exchange": {
                "criterion": "batched per-replica Luby matchings B=64 on the 4096-node torus "
                ">= 2x the serial dimension-exchange loop",
                "speedup": de["speedup"],
                "passed": de["speedup"] >= 2.0,
            },
            "sharded": {
                "criterion": "sharded B=256 (K process-local ensemble shards) >= 2x the "
                "single-process vectorized path on the 4096-node torus; applies to hosts "
                "with >= 4 usable cores — on smaller hosts the measured ratio is recorded "
                "but not gated (process parallelism cannot exceed the core count)",
                "speedup": sharded["sharded_speedup"],
                "workers": sharded["workers"],
                "cpus": cpus,
                "passed": sharded["sharded_speedup"] >= 2.0 if parallel_host else None,
            },
        },
        "results": rows,
        "sharded": sharded_rows,
        "smoke": smoke,
    }


def check_against(report: dict, baseline_path: Path, tolerance: float = 0.30) -> list[str]:
    """Regression guard: compare measured speedups to the committed baseline.

    Speedups are machine-normalized throughput ratios (both sides of a
    row run on the same host), so they transfer across machines far
    better than raw replica-rounds/sec.  A smoke-sized report compares
    against the baseline's ``smoke_results`` (smoke rounds amortize fixed
    overheads less, so full-run speedups would be a biased yardstick).  A
    row regresses when its measured speedup falls more than ``tolerance``
    below the baseline's.  Returns failure strings (empty = pass).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    reference = baseline["results"]
    if report.get("smoke") and "smoke_results" in baseline:
        reference = baseline["smoke_results"]
    base_rows = {
        (r["n"], r["replicas"], r["mode"], r.get("scheme", "diffusion")): r["speedup"]
        for r in reference
    }
    failures = []
    for row in report["results"]:
        key = (row["n"], row["replicas"], row["mode"], row.get("scheme", "diffusion"))
        base = base_rows.get(key)
        if base is None:
            continue
        floor = (1.0 - tolerance) * base
        if row["speedup"] < floor:
            failures.append(
                f"{key}: speedup {row['speedup']:.3f}x < {floor:.3f}x "
                f"(baseline {base:.3f}x - {tolerance:.0%})"
            )
    return failures


# ----------------------------------------------------------------------
# pytest entry points (smoke-sized)
# ----------------------------------------------------------------------
def test_ensemble_headline_speedup():
    """B=64 lockstep beats 64 sequential runs on the 4096-node torus.

    The full-size baseline gates the >=5x acceptance; at smoke rounds the
    fixed per-run overheads amortize less, so this asserts a conservative
    4x floor.
    """
    row = measure(64, 64, "continuous", rounds=30)
    assert row["speedup"] >= 4.0, f"expected >=4x, measured {row['speedup']}x"


def test_ensemble_beats_serial_small_torus():
    row = measure(16, 64, "continuous", rounds=60)
    assert row["speedup"] > 1.0


def test_dimension_exchange_batched_speedup():
    """Batched per-replica matchings beat the serial DE loop on the big torus."""
    row = measure(64, 64, "continuous", rounds=10, scheme="matching-de")
    assert row["speedup"] > 2.0, f"expected >2x, measured {row['speedup']}x"


def test_sharded_matches_vectorized_throughput_order():
    """Sharded execution stays within sanity range of vectorized even on
    hosts where process parallelism cannot pay off (the equivalence tests
    cover correctness; this guards against pathological overhead)."""
    row = measure_sharded(16, 32, "continuous", rounds=60, workers=2, repeats=2)
    assert row["sharded_speedup"] > 0.1, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI-sized run")
    parser.add_argument("--out", type=Path, default=None, help="write the JSON baseline here")
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 on "
        ">30%% regression in any matched row",
    )
    args = parser.parse_args(argv)
    report = run_suite(smoke=args.smoke)
    if args.out is not None and not args.smoke:
        # A committed baseline carries a smoke-sized row set too, so the CI
        # smoke guard compares like against like.  They are measured in a
        # fresh subprocess because that is what the CI guard runs: the full
        # grid leaves warmed allocator/cache state behind that inflates
        # in-process smoke numbers by ~30%.
        print("-- smoke rows for the regression guard (fresh process) --")
        import subprocess
        import tempfile

        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run(
                [sys.executable, __file__, "--smoke", "--out", tmp.name],
                check=True,
                env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "src")},
            )
            report["smoke_results"] = json.loads(Path(tmp.name).read_text())["results"]
    payload = json.dumps(report, indent=2)
    if args.out is not None:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    if args.check is not None:
        failures = check_against(report, args.check)
        if failures:
            print("REGRESSION vs baseline:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"no >30% speedup regression vs {args.check}")
    # A smoke run only checks the regression guard / that both engines
    # execute (shared CI runners are too noisy for absolute thresholds);
    # a full run additionally gates on the acceptance criteria (the
    # sharded criterion is only gated on >=4-core hosts).
    if args.smoke:
        return 0
    gated = [a for a in report["acceptance"].values() if a["passed"] is not None]
    return 0 if all(a["passed"] for a in gated) else 1


if __name__ == "__main__":
    sys.exit(main())
