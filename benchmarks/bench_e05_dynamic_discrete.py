"""E05 — Theorem 8: discrete diffusion on dynamic networks (new result)."""

from conftest import run_once

from repro.experiments.e05_dynamic_discrete import run


def test_e05_theorem8_table(benchmark, show):
    table = run_once(benchmark, run, ratio=1e3)
    show(table)
    assert all(v is True for v in table.column("within_bound"))
    assert all(k is not None for k in table.column("K_meas"))
