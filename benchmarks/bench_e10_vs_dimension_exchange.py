"""E10 — Section 3: Algorithm 1 versus dimension exchange [GM94]."""

from conftest import run_once

from repro.experiments.e10_vs_dimension_exchange import run


def test_e10_dimension_exchange_table(benchmark, show):
    table = run_once(benchmark, run, eps=1e-4)
    show(table)
    # The paper's comparator is the [GM94] two-stage scheme.
    assert all(v is True for v in table.column("diffusion_wins"))
    speedups = [s for s in table.column("speedup_gm94") if s is not None]
    assert all(s > 1.0 for s in speedups)
