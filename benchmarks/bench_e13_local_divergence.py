"""E13 — [RSW98]: local divergence Psi and discrete-vs-ideal deviation."""

from conftest import run_once

from repro.experiments.e13_local_divergence import run


def test_e13_local_divergence_table(benchmark, show):
    table = run_once(benchmark, run)
    show(table)
    assert all(v is True for v in table.column("dev<=Psi"))
    # Psi/bound stays O(1) while mu spans two orders of magnitude.
    ratios = table.column("Psi/bound")
    assert max(ratios) / max(min(ratios), 1e-9) < 100
