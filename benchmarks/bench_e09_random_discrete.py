"""E09 — Lemma 13 + Theorem 14: discrete Algorithm 2 (random partners)."""

from conftest import run_once

from repro.experiments.e09_random_discrete import run


def test_e09_random_partner_discrete_table(benchmark, show):
    table = run_once(benchmark, run, sizes=(64, 256), ratio=1e4, trials=20)
    show(table)
    assert all(v is True for v in table.column("lemma13_holds"))
    for frac, guar in zip(table.column("success_frac"), table.column("guar_prob")):
        assert frac >= guar - 1e-9
