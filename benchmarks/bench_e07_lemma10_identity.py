"""E07 — Lemma 10: the pairwise-square identity at float64 noise level."""

from conftest import run_once

from repro.experiments.e07_lemma10_identity import run


def test_e07_lemma10_table(benchmark, show):
    table = run_once(benchmark, run, sizes=(8, 64, 256, 1024), trials=25)
    show(table)
    assert all(v is True for v in table.column("identity_holds"))
    assert max(table.column("max_rel_error")) < 1e-9
