"""Benchmark-suite fixtures.

Every bench regenerates one experiment table (the "rows the paper
reports"), prints it, and asserts the qualitative claim so a regression
in either performance or correctness is caught here.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a Table to the real terminal even under pytest capture."""

    def _show(table) -> None:
        with capsys.disabled():
            print()
            print(table.to_text())

    return _show


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiment functions are deterministic end-to-end runs (seconds,
    not microseconds), so a single timed round is the meaningful number;
    pytest-benchmark still records it in the comparison table.
    """
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
