"""E15 — extension: asynchronous vs synchronous diffusion [Cortes02]."""

from conftest import run_once

from repro.experiments.e15_async_vs_sync import run


def test_e15_async_vs_sync_table(benchmark, show):
    table = run_once(benchmark, run, eps=1e-6)
    show(table)
    assert all(v is True for v in table.column("constant_factor"))
    # Work-normalized async never costs more than 2x sync on these families.
    ratios = [r for r in table.column("rand/sync") if r is not None]
    assert max(ratios) < 2.0
