"""E08 — Lemma 11 + Theorem 12: continuous Algorithm 2 (random partners)."""

from conftest import run_once

from repro.experiments.e08_random_continuous import run


def test_e08_random_partner_table(benchmark, show):
    table = run_once(benchmark, run, sizes=(64, 256, 1024), trials=20)
    show(table)
    assert all(v is True for v in table.column("lemma11_holds"))
    for frac, guar in zip(table.column("success_frac"), table.column("guar_prob")):
        assert frac >= guar - 1e-9
    # Theorem 12's logarithmic scaling: median rounds grow slowly with n.
    medians = table.column("T_meas_med")
    assert medians[-1] < 3 * medians[0]
