"""E02 — Theorem 6: discrete Algorithm 1 versus its threshold and bound."""

from conftest import run_once

from repro.experiments.e02_theorem6_discrete import run


def test_e02_theorem6_table(benchmark, show):
    table = run_once(benchmark, run, ratio=1e4)
    show(table)
    assert all(v is True for v in table.column("lemma5_holds"))
    for meas, bound in zip(table.column("T_meas"), table.column("T_bound")):
        assert meas is not None and meas <= bound
