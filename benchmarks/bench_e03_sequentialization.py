"""E03 — Lemmas 1-2: sequentialization decomposition and concurrency gap."""

from conftest import run_once

from repro.experiments.e03_sequentialization import run


def test_e03_continuous_table(benchmark, show):
    table = run_once(benchmark, run, trials=20)
    show(table)
    assert all(v == 0 for v in table.column("lemma1_viol"))
    assert all(v >= 1.0 for v in table.column("drop/lemma2_lb_min"))
    assert all(v is True for v in table.column("gap>=0.5"))


def test_e03_discrete_table(benchmark, show):
    table = run_once(benchmark, run, trials=20, discrete=True)
    show(table)
    assert all(v == 0 for v in table.column("lemma1_viol"))
