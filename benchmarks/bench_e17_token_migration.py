"""E17 — token-identity migration cost (systems view of Algorithm 1)."""

from conftest import run_once

from repro.experiments.e17_token_migration import run


def test_e17_token_migration_table(benchmark, show):
    table = run_once(benchmark, run)
    show(table)
    rows = list(zip(table.column("graph"), table.column("policy"),
                    table.column("max_per_token"), table.column("never_moved")))
    by_graph: dict[str, dict[str, tuple]] = {}
    for graph, policy, mx, never in rows:
        by_graph.setdefault(graph, {})[policy] = (mx, never)
    for graph, policies in by_graph.items():
        # LIFO concentrates churn; FIFO spreads it.
        assert policies["lifo"][0] >= policies["fifo"][0], graph
        assert policies["lifo"][1] >= policies["fifo"][1], graph
