"""E14 — extension: heterogeneous (speed-weighted) diffusion [EMP02]."""

from conftest import run_once

from repro.experiments.e14_heterogeneous import run


def test_e14_heterogeneous_table(benchmark, show):
    table = run_once(benchmark, run)
    show(table)
    assert all(v is True for v in table.column("converged"))
    matches = [v for v in table.column("matches_alg1") if v is not None]
    assert matches and all(v is True for v in matches)
