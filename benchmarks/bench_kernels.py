"""Microbenchmarks of the round kernels (the hot path of every experiment).

These are the numbers to watch when touching the vectorized sweeps:
one round of each scheme on a 100x100 torus (10k nodes, 20k edges) and on
a 4096-node random 8-regular expander.  Unlike the experiment benches,
these use pytest-benchmark's statistical timing (many rounds).
"""

import numpy as np
import pytest

from repro.baselines.first_order import fos_round_continuous, fos_round_discrete_randomized
from repro.core.diffusion import diffusion_round_continuous, diffusion_round_discrete
from repro.core.potential import potential
from repro.core.random_partner import partner_round_continuous
from repro.core.sequential import sequentialize_round
from repro.graphs.generators import random_regular, torus_2d
from repro.graphs.matchings import luby_matching


@pytest.fixture(scope="module")
def big_torus():
    return torus_2d(100, 100)


@pytest.fixture(scope="module")
def big_expander():
    return random_regular(4096, 8, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def torus_loads(big_torus):
    return np.random.default_rng(1).integers(0, 10_000, big_torus.n).astype(np.int64)


def test_kernel_diffusion_continuous_10k(benchmark, big_torus, torus_loads):
    loads = torus_loads.astype(np.float64)
    out = benchmark(diffusion_round_continuous, loads, big_torus)
    assert out.sum() == pytest.approx(loads.sum(), rel=1e-9)


def test_kernel_diffusion_discrete_10k(benchmark, big_torus, torus_loads):
    out = benchmark(diffusion_round_discrete, torus_loads, big_torus)
    assert out.sum() == torus_loads.sum()


def test_kernel_diffusion_discrete_expander(benchmark, big_expander):
    loads = np.random.default_rng(2).integers(0, 10_000, big_expander.n).astype(np.int64)
    out = benchmark(diffusion_round_discrete, loads, big_expander)
    assert out.sum() == loads.sum()


def test_kernel_fos_continuous_10k(benchmark, big_torus, torus_loads):
    loads = torus_loads.astype(np.float64)
    out = benchmark(fos_round_continuous, loads, big_torus)
    assert out.sum() == pytest.approx(loads.sum(), rel=1e-9)


def test_kernel_fos_randomized_10k(benchmark, big_torus, torus_loads):
    rng = np.random.default_rng(3)
    out = benchmark(fos_round_discrete_randomized, torus_loads, big_torus, rng)
    assert out.sum() == torus_loads.sum()


def test_kernel_partner_round_10k(benchmark):
    loads = np.random.default_rng(4).uniform(0, 100, 10_000)
    rng = np.random.default_rng(5)
    out = benchmark(partner_round_continuous, loads, rng)
    assert out.sum() == pytest.approx(loads.sum(), rel=1e-9)


def test_kernel_luby_matching_10k(benchmark, big_torus):
    rng = np.random.default_rng(6)
    ids = benchmark(luby_matching, big_torus, rng)
    assert ids.size > 0


def test_kernel_potential_10k(benchmark, torus_loads):
    phi = benchmark(potential, torus_loads)
    assert phi > 0


def test_kernel_sequentialization_2k_edges(benchmark):
    """The O(m log m) proof-device sweep on a 1024-node torus."""
    topo = torus_2d(32, 32)
    loads = np.random.default_rng(7).uniform(0, 1000, topo.n)
    report = benchmark(sequentialize_round, loads, topo)
    assert report.lemma1_violations == []
