"""E06 — Lemma 9: partner-degree statistics of Algorithm 2's link graphs."""

from conftest import run_once

from repro.experiments.e06_lemma9_partners import run


def test_e06_lemma9_table(benchmark, show):
    table = run_once(benchmark, run, sizes=(64, 256, 1024, 4096), rounds=100)
    show(table)
    assert all(v is True for v in table.column("holds"))
    # Balls-into-bins: the max-degree over prediction ratio stays O(1).
    ratios = table.column("max/pred")
    assert max(ratios) < 4.0
