"""E16 — Theorem 4 tightness: the slack is exactly Lemma 1's factor 2."""

from conftest import run_once

from repro.experiments.e16_bound_tightness import run


def test_e16_bound_tightness_table(benchmark, show):
    table = run_once(benchmark, run)
    show(table)
    assert all(v is True for v in table.column("slack~2"))
    assert all(v is True for v in table.column("respects_diam"))
    # The Fiedler rows pin the slack near 2 (the Lemma 1 giveaway).
    fiedler_slacks = [
        s for w, s in zip(table.column("workload"), table.column("slack")) if w == "fiedler"
    ]
    assert all(1.7 <= s <= 2.3 for s in fiedler_slacks)
