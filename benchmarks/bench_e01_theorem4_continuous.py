"""E01 — Theorem 4: continuous Algorithm 1 versus its round bound."""

from conftest import run_once

from repro.experiments.e01_theorem4_continuous import run


def test_e01_theorem4_table(benchmark, show):
    table = run_once(benchmark, run, eps=1e-6)
    show(table)
    # Theorem 4 must hold on every family.
    assert all(v is True for v in table.column("within_bound"))
    # The bound is meaningful: measured rounds within (0, bound].
    for ratio in table.column("meas/bound"):
        assert ratio is not None and 0 < ratio <= 1.0
