"""Ablation benches for the design choices DESIGN.md calls out.

A1 — damping constant: the paper's ``4 max(d_i, d_j)`` versus the
     aggressive ``max(d_i, d_j) + 1`` (Cybenko-style) and the overly
     conservative ``8 max``.  The paper's choice trades some speed for
     the clean sequentialization bound; the table quantifies the cost.
A2 — OPS eigenvalue ordering: Leja versus ascending (numerical
     stability; E12's scheme would silently lose exactness without it).
A3 — matching generator for dimension exchange: Luby local-min versus
     [GM94] two-stage (matching density drives the convergence factor
     measured in E10).
A4 — engine representation: vectorized kernel versus the message-passing
     substrate on the same instance (the price of fidelity).
"""

import math

import numpy as np
import pytest

from conftest import run_once

from repro.analysis.reporting import Table
from repro.baselines.ops import OptimalPolynomialBalancer
from repro.core.diffusion import apply_edge_flows, diffusion_round_discrete
from repro.core.potential import potential
from repro.experiments.common import SEED, run_to_fraction
from repro.graphs.generators import cycle, path, random_regular, torus_2d
from repro.graphs.matchings import luby_matching, two_stage_matching
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load
from repro.simulation.superstep import run_superstep_diffusion


def _damped_round(loads, topo, damping):
    """Algorithm-1-style round with a custom per-edge damping function."""
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    deg = topo.degrees
    denom = damping(np.maximum(deg[u], deg[v]).astype(np.float64))
    flows = (loads[u] - loads[v]) / denom
    return apply_edge_flows(loads, topo, flows)


def _rounds_to_eps(loads, topo, damping, eps=1e-6, cap=100_000):
    phi0 = potential(loads)
    x = loads.copy()
    for t in range(1, cap + 1):
        x = _damped_round(x, topo, damping)
        phi = potential(x)
        if not np.isfinite(phi) or phi > 10 * phi0:
            return None  # diverged
        if phi <= eps * phi0:
            return t
    return None


def ablation_damping():
    table = Table(
        "A1 - damping constant ablation (continuous, rounds to 1e-6*Phi0)",
        ["graph", "4max(d) (paper)", "2max(d)", "max(d)+1", "8max(d)"],
    )
    for topo in (cycle(32), torus_2d(8, 8), random_regular(64, 4, rng=np.random.default_rng(SEED))):
        loads = point_load(topo.n, discrete=False)
        table.add_row(
            topo.name,
            _rounds_to_eps(loads, topo, lambda m: 4.0 * m),
            _rounds_to_eps(loads, topo, lambda m: 2.0 * m),
            _rounds_to_eps(loads, topo, lambda m: m + 1.0),
            _rounds_to_eps(loads, topo, lambda m: 8.0 * m),
        )
    table.add_note("smaller damping converges faster but forfeits the Lemma 1 ordering argument;")
    table.add_note("the paper's 4max(d) pays <= 4x rounds vs max(d)+1 for a clean concurrency proof.")
    return table


def test_a1_damping_constant(benchmark, show):
    table = run_once(benchmark, ablation_damping)
    show(table)
    paper = table.column("4max(d) (paper)")
    aggressive = table.column("max(d)+1")
    conservative = table.column("8max(d)")
    for p, a, c in zip(paper, aggressive, conservative):
        assert p is not None and a is not None and c is not None
        assert a <= p <= c  # monotone in damping
        assert p <= 6 * a  # the paper's constant costs only a small factor


def ablation_ops_ordering():
    table = Table(
        "A2 - OPS eigenvalue ordering (final Phi after m-1 exact rounds)",
        ["graph", "m-1", "Phi_final (Leja)", "Phi_final (ascending)", "leja_wins"],
    )
    for topo in (path(24), cycle(32), torus_2d(8, 8)):
        loads = point_load(topo.n, discrete=False)
        leja = OptimalPolynomialBalancer(topo, use_leja=True)
        asc = OptimalPolynomialBalancer(topo, use_leja=False)
        t_leja = run_balancer(leja, loads, rounds=leja.rounds_to_exact)
        t_asc = run_balancer(asc, loads, rounds=asc.rounds_to_exact)
        table.add_row(
            topo.name,
            leja.rounds_to_exact,
            t_leja.last_potential,
            t_asc.last_potential,
            bool(t_leja.last_potential <= t_asc.last_potential),
        )
    return table


def test_a2_ops_ordering(benchmark, show):
    table = run_once(benchmark, ablation_ops_ordering)
    show(table)
    assert all(v is True for v in table.column("leja_wins"))
    # Leja keeps OPS numerically exact (tiny residual) on every family.
    assert max(table.column("Phi_final (Leja)")) < 1e-3


def ablation_matching_density():
    table = Table(
        "A3 - matching generator density (mean fraction of edges matched)",
        ["graph", "luby", "two-stage [GM94]", "luby/two-stage"],
    )
    rng = np.random.default_rng(SEED)
    for topo in (cycle(32), torus_2d(8, 8), random_regular(64, 4, rng=rng)):
        rounds = 300
        luby_frac = np.mean([luby_matching(topo, rng).size for _ in range(rounds)]) / topo.m
        gm_frac = np.mean([two_stage_matching(topo, rng).size for _ in range(rounds)]) / topo.m
        table.add_row(topo.name, float(luby_frac), float(gm_frac), float(luby_frac / gm_frac))
    table.add_note("denser matchings -> faster dimension exchange; explains E10's Luby-vs-GM94 gap.")
    return table


def test_a3_matching_density(benchmark, show):
    table = run_once(benchmark, ablation_matching_density)
    show(table)
    for luby, gm in zip(table.column("luby"), table.column("two-stage [GM94]")):
        assert luby > gm  # local-min matches strictly more edges
        assert gm > 1.0 / (8 * 31)  # never below the [GM94] floor


def ablation_engine_fidelity():
    table = Table(
        "A4 - vectorized engine vs message-passing substrate (50 rounds, discrete)",
        ["graph", "identical", "superstep msgs/round (upper bound)"],
    )
    for topo in (cycle(32), torus_2d(8, 8)):
        loads = point_load(topo.n, total=100 * topo.n, discrete=True)
        hist = run_superstep_diffusion(topo, loads, 50, discrete=True)
        x = loads.copy()
        identical = True
        for k in range(50):
            x = diffusion_round_discrete(x, topo)
            identical = identical and np.array_equal(hist[k + 1], x)
        table.add_row(topo.name, identical, 4 * topo.m)
    return table


def test_a4_engine_fidelity(benchmark, show):
    table = run_once(benchmark, ablation_engine_fidelity)
    show(table)
    assert all(v is True for v in table.column("identical"))
