"""E04 — Theorem 7: continuous diffusion on dynamic networks."""

from conftest import run_once

from repro.experiments.e04_dynamic_continuous import run


def test_e04_theorem7_table(benchmark, show):
    table = run_once(benchmark, run, eps=1e-4)
    show(table)
    assert all(v is True for v in table.column("within_bound"))
    # Every scenario must actually converge.
    assert all(k is not None for k in table.column("K_meas"))
