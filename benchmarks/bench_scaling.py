"""Scaling study: round-kernel cost versus problem size.

The engine claims O(m) per round (vectorized edge sweeps).  This bench
times the discrete Algorithm 1 kernel across two orders of magnitude of
torus sizes; pytest-benchmark's comparison output makes super-linear
regressions obvious.  (Spectral setup costs are excluded — the kernels
never touch the eigensolver.)
"""

import numpy as np
import pytest

from repro.core.diffusion import diffusion_round_discrete
from repro.graphs.generators import torus_2d

SIZES = [(16, 16), (32, 32), (64, 64), (128, 128)]


@pytest.mark.parametrize("dims", SIZES, ids=[f"torus{r}x{c}" for r, c in SIZES])
def test_kernel_scaling_torus(benchmark, dims):
    topo = torus_2d(*dims)
    loads = np.random.default_rng(0).integers(0, 10_000, topo.n).astype(np.int64)
    out = benchmark(diffusion_round_discrete, loads, topo)
    assert out.sum() == loads.sum()


def test_partner_sampling_scaling_100k(benchmark):
    """Algorithm 2's per-round partner sampling at fleet scale (100k nodes)."""
    from repro.core.random_partner import sample_partner_links

    rng = np.random.default_rng(1)
    links = benchmark(sample_partner_links, 100_000, rng)
    assert 50_000 <= links.shape[0] <= 100_000
