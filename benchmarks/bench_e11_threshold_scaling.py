"""E11 — Lemma 5 remark: linear-in-n stall threshold (vs quadratic)."""

from conftest import run_once

from repro.experiments.e11_threshold_scaling import run


def test_e11_threshold_scaling_table(benchmark, show):
    table = run_once(benchmark, run, sizes=(32, 64, 128, 256))
    show(table)
    assert all(v is True for v in table.column("below_linear"))
    # The stalled/quadratic ratio must decay with n (remark's point).
    ratios = table.column("stall/quadratic")
    assert ratios[-1] < ratios[0] / 2
