"""E12 — Section 2 baselines: FOS vs SOS vs OPS vs Algorithm 1."""

from conftest import run_once

from repro.experiments.e12_fos_sos_ops import run


def test_e12_baseline_comparison_table(benchmark, show):
    table = run_once(benchmark, run, eps=1e-6)
    show(table)
    assert all(v is True for v in table.column("ordering_holds"))
    # SOS advantage is largest on the cycle (the badly connected family).
    ratios = table.column("fos/sos")
    assert ratios[0] == max(r for r in ratios if r is not None)
    # OPS finishes within its m-1 prediction everywhere.
    for t_ops, pred in zip(table.column("T_ops"), table.column("ops_pred(m-1)")):
        assert t_ops is not None and t_ops <= pred
